// Package machine assembles node architectures out of the memory-system
// and network simulators and provides the two profiles studied in the
// paper: the Cray T3D and the Intel Paragon (Stricker/Gross, ISCA 1995,
// §3.5). A Machine is a static description; a Node instantiates the
// mutable memory-system state for one processing element.
package machine

import (
	"errors"
	"fmt"

	"ctcomm/internal/memsim"
	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
	"ctcomm/internal/sim"
)

// ErrBadSpec marks machine-specification errors: an invalid topology,
// hierarchy, sizing, or field value — whether in a built-in sizing call
// or a loaded JSON profile. Serving layers test for it with errors.Is
// and answer a client error instead of crashing.
var ErrBadSpec = errors.New("bad machine spec")

// badSpec tags err as a specification error (nil-safe).
func badSpec(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrBadSpec, err)
}

// NIConfig describes the processor-visible network interface: a
// memory-mapped port the processor stores outgoing words to (the T3D
// annex window, the Paragon NI FIFOs) and reads incoming words from.
type NIConfig struct {
	// PortStoreNs is the processor cost of one word store to the port.
	PortStoreNs float64
	// PortLoadNs is the processor cost of one word load from the port.
	PortLoadNs float64
	// InjectMBps caps the rate at which the node can push data into the
	// network through this port, regardless of who drives it.
	InjectMBps float64
	// EjectMBps caps the rate at which the network can deliver into the
	// node.
	EjectMBps float64
}

// DepositConfig describes the deposit engine: hardware that takes
// incoming remote stores off the network and performs the memory writes
// in the background (the T3D "annex" fetch/deposit circuitry, or a
// Paragon DMA with heavy restrictions).
type DepositConfig struct {
	Present bool
	// Contig/Strided/Indexed report which write patterns the engine can
	// handle. The T3D annex handles all three; a plain DMA handles only
	// well-aligned contiguous blocks (paper §3.5.2).
	Contig  bool
	Strided bool
	Indexed bool
	// SetupNs is the per-message processor cost of arming the engine.
	SetupNs float64
	// KickNs is processor attention required per DRAM page crossed
	// (Paragon DMAs "need to be kicked back on ... due to crossing a
	// memory page boundary", §5.1.3). Zero for autonomous engines.
	KickNs float64
	// MinUnitWords is the engine's smallest transfer unit in 64-bit
	// words (0 and 1 mean single words). The paper's conclusions warn
	// that "engines that have a large unit of transfer (say more than 4
	// operands, or even pages) may not deliver the expected performance"
	// because patterns finer than the unit force preparation copies: a
	// deposit engine with unit u can only chain patterns whose dense
	// runs are at least u words long.
	MinUnitWords int
}

// Supports reports whether the engine can deposit the given pattern.
func (d DepositConfig) Supports(spec pattern.Spec) bool {
	if !d.Present {
		return false
	}
	unit := d.MinUnitWords
	if unit < 1 {
		unit = 1
	}
	switch spec.Kind() {
	case pattern.KindContig:
		return d.Contig
	case pattern.KindStrided:
		return d.Strided && spec.Block() >= unit
	case pattern.KindIndexed:
		return d.Indexed && unit <= 1
	default:
		return false
	}
}

// FetchConfig describes the fetch engine (DMA) that reads memory and
// feeds the network in the background: the xF0 basic transfer.
type FetchConfig struct {
	Present bool
	// ContigOnly restricts the engine to contiguous read patterns.
	ContigOnly bool
	// RateMBps is the engine's streaming limit independent of memory.
	RateMBps float64
	SetupNs  float64
	KickNs   float64 // per DRAM page, like DepositConfig.KickNs
}

// Supports reports whether the fetch engine can read the given pattern.
func (f FetchConfig) Supports(spec pattern.Spec) bool {
	if !f.Present {
		return false
	}
	if f.ContigOnly {
		return spec.Kind() == pattern.KindContig
	}
	return spec.IsMemory()
}

// Machine is a complete node-architecture profile plus its interconnect.
type Machine struct {
	Name string
	Mem  memsim.Config
	Net  netsim.Config
	Topo netsim.Topology
	NI   NIConfig

	Deposit DepositConfig
	Fetch   FetchConfig

	// CoProcessor reports whether the node has a second processor that
	// can be dedicated to communication (the Paragon's second i860,
	// usable as a deposit engine for any pattern, §5.1.4).
	CoProcessor bool

	// BusMBps is the total node memory-bus bandwidth, the resource
	// constraint that bounds concurrent processor + engine traffic.
	BusMBps float64

	// CoProcPenalty scales memory throughput when processor and
	// co-processor interleave fine-grained accesses on the shared bus
	// (the paper measured up to 50% loss on the A-step Paragon, §5.1.4;
	// 1.0 means no penalty).
	CoProcPenalty float64

	// DefaultCongestion is the congestion factor assumed for model
	// estimates ("communication runs at a congestion of two in many
	// cases", §4.3).
	DefaultCongestion float64

	// LibOverheadNs is the constant per-message software overhead of the
	// fastest vendor/third-party library (libsma on the T3D, libnx under
	// SUNMOS on the Paragon).
	LibOverheadNs float64

	// PVMOverheadNs is the constant per-message overhead of the portable
	// PVM library, whose buffered semantics cost "constant overhead for
	// sending a message" (paper §6.2).
	PVMOverheadNs float64
}

// Validate checks the whole profile.
func (m *Machine) Validate() error {
	if err := m.Mem.Validate(); err != nil {
		return err
	}
	if err := m.Net.Validate(); err != nil {
		return err
	}
	switch {
	case m.NI.PortStoreNs <= 0 || m.NI.PortLoadNs <= 0:
		return fmt.Errorf("machine: %s: NI port costs must be positive", m.Name)
	case m.NI.InjectMBps <= 0 || m.NI.EjectMBps <= 0:
		return fmt.Errorf("machine: %s: NI rates must be positive", m.Name)
	case m.BusMBps <= 0:
		return fmt.Errorf("machine: %s: BusMBps must be positive", m.Name)
	case m.DefaultCongestion < 1:
		return fmt.Errorf("machine: %s: DefaultCongestion must be >= 1", m.Name)
	case m.CoProcPenalty <= 0 || m.CoProcPenalty > 1:
		return fmt.Errorf("machine: %s: CoProcPenalty must be in (0,1]", m.Name)
	case m.Topo == nil:
		return fmt.Errorf("machine: %s: missing topology", m.Name)
	case m.LibOverheadNs < 0 || m.PVMOverheadNs < m.LibOverheadNs:
		return fmt.Errorf("machine: %s: invalid per-message overheads", m.Name)
	}
	if m.Net.Hier != nil {
		// Net.Validate normalized the hierarchy; re-check it against the
		// actual node count, which netsim alone cannot know.
		if err := m.Net.Hier.Validate(m.Topo.Nodes()); err != nil {
			return fmt.Errorf("machine: %s: %w", m.Name, err)
		}
	}
	return nil
}

// Clone returns a copy of the profile that is safe to mutate
// independently: value fields copy, and the network hierarchy — the one
// mutable pointer a profile owns — is deep-copied. The calibration
// fitter clones a base profile before rewriting its constants.
func (m *Machine) Clone() *Machine {
	c := *m
	c.Net.Hier = m.Net.Hier.Clone()
	return &c
}

// Nodes returns the number of compute nodes in the configured machine.
func (m *Machine) Nodes() int { return m.Topo.Nodes() }

// Observe directs every simulator built from this machine's memory and
// network configurations to record its work (accesses, events,
// simulated time) into st. A nil st disables collection. It returns m
// to allow chaining at construction sites.
func (m *Machine) Observe(st *sim.Stats) *Machine {
	m.Mem.Stats = st
	m.Net.Stats = st
	return m
}

// Node is one processing element: the machine profile plus its private
// memory-system state.
type Node struct {
	ID  int
	M   *Machine
	Mem *memsim.Memory
}

// NewNode instantiates node id with a cold memory system.
func (m *Machine) NewNode(id int) *Node {
	return &Node{ID: id, M: m, Mem: memsim.MustNew(m.Mem)}
}

// String identifies the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%d nodes, %s)", m.Name, m.Nodes(), m.Topo.Name())
}
