package machine

import (
	"errors"
	"testing"

	"ctcomm/internal/pattern"
)

func TestProfilesValidate(t *testing.T) {
	for _, m := range Profiles() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestProfilesAre64Nodes(t *testing.T) {
	for _, m := range Profiles() {
		if m.Nodes() != 64 {
			t.Errorf("%s: %d nodes, want 64", m.Name, m.Nodes())
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Cray T3D") == nil || ByName("Intel Paragon") == nil {
		t.Error("profiles not found by name")
	}
	if ByName("Connection Machine") != nil {
		t.Error("unknown machine should return nil")
	}
}

func TestT3DCapabilities(t *testing.T) {
	m := T3D()
	// The annex deposit engine handles every pattern (paper §3.5.1).
	for _, s := range []pattern.Spec{pattern.Contig(), pattern.Strided(64), pattern.Indexed()} {
		if !m.Deposit.Supports(s) {
			t.Errorf("T3D deposit should support %v", s)
		}
	}
	// No separate fetch DMA is modeled for sends.
	if m.Fetch.Supports(pattern.Contig()) {
		t.Error("T3D fetch engine should be absent")
	}
	if m.CoProcessor {
		t.Error("T3D has a single processor per node")
	}
	// Two nodes share a network port.
	if m.Net.NodesPerPort != 2 {
		t.Errorf("T3D NodesPerPort = %d, want 2", m.Net.NodesPerPort)
	}
}

func TestParagonCapabilities(t *testing.T) {
	m := Paragon()
	// DMA deposit handles only contiguous blocks (paper §3.5.2).
	if !m.Deposit.Supports(pattern.Contig()) {
		t.Error("Paragon deposit should support contiguous")
	}
	for _, s := range []pattern.Spec{pattern.Strided(64), pattern.Indexed()} {
		if m.Deposit.Supports(s) {
			t.Errorf("Paragon DMA deposit should not support %v", s)
		}
	}
	if !m.Fetch.Supports(pattern.Contig()) || m.Fetch.Supports(pattern.Strided(4)) {
		t.Error("Paragon fetch DMA should be contiguous-only")
	}
	if !m.CoProcessor {
		t.Error("Paragon has a communication co-processor")
	}
}

func TestDepositSupportsRejectsPort(t *testing.T) {
	m := T3D()
	if m.Deposit.Supports(pattern.Fixed()) {
		t.Error("deposit of a port pattern is meaningless")
	}
}

func TestNewNodeIsCold(t *testing.T) {
	m := T3D()
	n := m.NewNode(3)
	if n.ID != 3 || n.Mem == nil {
		t.Fatalf("bad node: %+v", n)
	}
	res := n.Mem.Run([]pattern.Access{{Addr: 0}})
	if res.CacheHits != 0 {
		t.Error("fresh node should have a cold cache")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	muts := []func(*Machine){
		func(m *Machine) { m.NI.PortStoreNs = 0 },
		func(m *Machine) { m.NI.InjectMBps = 0 },
		func(m *Machine) { m.BusMBps = 0 },
		func(m *Machine) { m.DefaultCongestion = 0.5 },
		func(m *Machine) { m.CoProcPenalty = 0 },
		func(m *Machine) { m.CoProcPenalty = 1.5 },
		func(m *Machine) { m.Topo = nil },
		func(m *Machine) { m.Mem.WordNs = -1 },
		func(m *Machine) { m.Net.LinkMBps = -1 },
	}
	for i, mut := range muts {
		m := T3D()
		mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestMachineString(t *testing.T) {
	if s := T3D().String(); s == "" {
		t.Error("String should be non-empty")
	}
}

func TestSizedConstructors(t *testing.T) {
	m, err := T3DSized(2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 128 || m.Net.NodesPerPort != 2 {
		t.Errorf("T3DSized wrong: %d nodes, %d per port", m.Nodes(), m.Net.NodesPerPort)
	}
	if _, err := T3DSized(0, 8, 8); err == nil {
		t.Error("invalid torus dims should fail")
	}
	p, err := ParagonSized(112, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 1792 {
		t.Errorf("ParagonSized nodes = %d", p.Nodes())
	}
	if _, err := ParagonSized(-1, 16); err == nil {
		t.Error("invalid mesh dims should fail")
	}
}

func TestDepositMinUnit(t *testing.T) {
	d := DepositConfig{Present: true, Contig: true, Strided: true, Indexed: true, MinUnitWords: 4}
	if !d.Supports(pattern.StridedBlock(64, 4)) {
		t.Error("unit-4 engine should chain 4-word runs")
	}
	if d.Supports(pattern.Strided(64)) {
		t.Error("unit-4 engine must not chain single-word strides")
	}
	if d.Supports(pattern.Indexed()) {
		t.Error("unit-4 engine must not chain indexed patterns")
	}
	if !d.Supports(pattern.Contig()) {
		t.Error("unit-4 engine chains contiguous blocks")
	}
}

// TestConstructorErrorPath pins the no-panic contract: bad sizes reach
// the caller as ErrBadSpec through the error-returning constructors —
// the path ctserved machine-file loading depends on — while the
// panicking wrappers stay reserved for the known-good built-ins.
func TestConstructorErrorPath(t *testing.T) {
	for _, c := range []struct {
		name string
		err  func() error
	}{
		{"T3DSized(0,4,4)", func() error { _, err := T3DSized(0, 4, 4); return err }},
		{"T3DSized(-1,1,1)", func() error { _, err := T3DSized(-1, 1, 1); return err }},
		{"ParagonSized(0,16)", func() error { _, err := ParagonSized(0, 16); return err }},
	} {
		err := c.err()
		if err == nil {
			t.Errorf("%s: want error, got nil", c.name)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v should wrap ErrBadSpec", c.name, err)
		}
	}

	// The known-good constructors must not error (the panic wrappers
	// T3D()/Paragon()/MulticoreCluster()/CrayXE6() rely on it).
	for _, mk := range []func() (*Machine, error){NewT3D, NewParagon, NewMulticoreCluster, NewCrayXE6} {
		if m, err := mk(); err != nil || m == nil {
			t.Errorf("built-in constructor failed: %v", err)
		}
	}
}
