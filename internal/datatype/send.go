package datatype

import (
	"fmt"

	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
)

// Send simulates the transfer of a derived-datatype buffer from one
// node to another on the machine, with the library strategy of the
// given style: PVM/buffer-packing packs via the datatype engine first;
// chained streams the datatype's pattern straight through the
// hardware. The returned result carries the simulated timing; the
// datatype's classified pattern decides the access costs, exactly as
// the paper's xQy patterns do.
//
// sendType describes the source layout and recvType the destination
// layout; they must cover the same number of words (MPI's type
// signature matching rule).
func Send(m *machine.Machine, style comm.Style, sendType, recvType *Datatype, opt comm.Options) (comm.Result, error) {
	if sendType.Words() != recvType.Words() {
		return comm.Result{}, fmt.Errorf("datatype: send covers %d words, recv %d (type mismatch)",
			sendType.Words(), recvType.Words())
	}
	opt.Words = sendType.Words()
	return comm.Run(m, style, sendType.Spec(), recvType.Spec(), opt)
}

// Transfer moves real data end to end through the functional path
// (pack, wire, unpack) and returns the updated receive buffer — the
// correctness counterpart of Send's timing.
func Transfer(sendType, recvType *Datatype, sendBuf, recvBuf []float64) error {
	if sendType.Words() != recvType.Words() {
		return fmt.Errorf("datatype: send covers %d words, recv %d (type mismatch)",
			sendType.Words(), recvType.Words())
	}
	wire, err := sendType.Pack(sendBuf)
	if err != nil {
		return err
	}
	return recvType.Unpack(wire, recvBuf)
}
