// Package datatype provides an MPI-style derived-datatype view of the
// paper's access patterns. MPI standardized the concept the paper
// works with — describing non-contiguous communication buffers so the
// library can gather and scatter them — as derived datatypes
// (MPI_Type_vector, MPI_Type_indexed, ...). This package maps those
// constructors onto the copy-transfer model's pattern classes, so the
// paper's buffer-packing-vs-chained question can be asked in modern
// terms: is a send of this datatype packed by the library or chained
// through the hardware?
package datatype

import (
	"fmt"

	"ctcomm/internal/distrib"
	"ctcomm/internal/pattern"
)

// Datatype describes the memory layout of a communication buffer in
// 64-bit word units.
type Datatype struct {
	name string
	// offsets are the word offsets of the datatype's elements relative
	// to the buffer start, in transfer order.
	offsets []int64
	// spec is the classified symbolic pattern.
	spec pattern.Spec
}

// Name returns a diagnostic name ("vector(16,2,64)" etc.).
func (d *Datatype) Name() string { return d.name }

// Words returns the number of payload words the datatype covers.
func (d *Datatype) Words() int { return len(d.offsets) }

// Offsets returns the word offsets in transfer order. The slice is
// shared; callers must not modify it.
func (d *Datatype) Offsets() []int64 { return d.offsets }

// Spec returns the copy-transfer pattern class of the datatype:
// contiguous, (block-)strided, or indexed.
func (d *Datatype) Spec() pattern.Spec { return d.spec }

// Contiguous returns the datatype of count consecutive words
// (MPI_Type_contiguous).
func Contiguous(count int) (*Datatype, error) {
	if count < 1 {
		return nil, fmt.Errorf("datatype: count %d < 1", count)
	}
	offs := make([]int64, count)
	for i := range offs {
		offs[i] = int64(i)
	}
	return build(fmt.Sprintf("contiguous(%d)", count), offs)
}

// Vector returns count blocks of blocklen words separated by stride
// words (MPI_Type_vector). blocklen <= stride.
func Vector(count, blocklen, stride int) (*Datatype, error) {
	if count < 1 || blocklen < 1 || stride < blocklen {
		return nil, fmt.Errorf("datatype: invalid vector(%d,%d,%d)", count, blocklen, stride)
	}
	offs := make([]int64, 0, count*blocklen)
	for b := 0; b < count; b++ {
		for w := 0; w < blocklen; w++ {
			offs = append(offs, int64(b*stride+w))
		}
	}
	return build(fmt.Sprintf("vector(%d,%d,%d)", count, blocklen, stride), offs)
}

// Indexed returns blocks of the given lengths at the given
// displacements (MPI_Type_indexed). Blocks must not overlap.
func Indexed(blocklens []int, displs []int64) (*Datatype, error) {
	if len(blocklens) != len(displs) || len(blocklens) == 0 {
		return nil, fmt.Errorf("datatype: %d lengths for %d displacements", len(blocklens), len(displs))
	}
	seen := make(map[int64]bool)
	var offs []int64
	for i, bl := range blocklens {
		if bl < 1 {
			return nil, fmt.Errorf("datatype: block %d has length %d", i, bl)
		}
		for w := 0; w < bl; w++ {
			o := displs[i] + int64(w)
			if o < 0 {
				return nil, fmt.Errorf("datatype: negative offset %d", o)
			}
			if seen[o] {
				return nil, fmt.Errorf("datatype: overlapping offset %d", o)
			}
			seen[o] = true
			offs = append(offs, o)
		}
	}
	return build(fmt.Sprintf("indexed(%d blocks)", len(blocklens)), offs)
}

// build classifies the offsets and wraps them.
func build(name string, offs []int64) (*Datatype, error) {
	spec, err := distrib.Classify(offs)
	if err != nil {
		return nil, err
	}
	return &Datatype{name: name, offsets: offs, spec: spec}, nil
}

// Pack gathers the datatype's elements from buf into a dense slice —
// what an MPI library's packing path does before a buffer-packing send.
func (d *Datatype) Pack(buf []float64) ([]float64, error) {
	out := make([]float64, len(d.offsets))
	for i, o := range d.offsets {
		if o < 0 || o >= int64(len(buf)) {
			return nil, fmt.Errorf("datatype: offset %d outside buffer of %d words", o, len(buf))
		}
		out[i] = buf[o]
	}
	return out, nil
}

// Unpack scatters dense data into buf per the datatype — the receive
// side of the packing path.
func (d *Datatype) Unpack(data []float64, buf []float64) error {
	if len(data) != len(d.offsets) {
		return fmt.Errorf("datatype: %d values for %d elements", len(data), len(d.offsets))
	}
	for i, o := range d.offsets {
		if o < 0 || o >= int64(len(buf)) {
			return fmt.Errorf("datatype: offset %d outside buffer of %d words", o, len(buf))
		}
		buf[o] = data[i]
	}
	return nil
}

// Extent returns the span in words from offset 0 to one past the
// highest element.
func (d *Datatype) Extent() int64 {
	max := int64(0)
	for _, o := range d.offsets {
		if o+1 > max {
			max = o + 1
		}
	}
	return max
}
