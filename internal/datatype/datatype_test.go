package datatype

import (
	"testing"
	"testing/quick"

	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
	"ctcomm/internal/pattern"
)

func TestContiguousClassifies(t *testing.T) {
	d, err := Contiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != pattern.Contig() || d.Words() != 16 || d.Extent() != 16 {
		t.Errorf("contiguous: %v %d %d", d.Spec(), d.Words(), d.Extent())
	}
	if _, err := Contiguous(0); err == nil {
		t.Error("zero count should fail")
	}
}

func TestVectorClassifies(t *testing.T) {
	// Single-word blocks -> plain strided.
	d, err := Vector(16, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != pattern.Strided(64) {
		t.Errorf("vector(16,1,64) = %v, want stride 64", d.Spec())
	}
	// Two-word blocks -> block-strided (the complex-number case).
	d, err = Vector(16, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != pattern.StridedBlock(64, 2) {
		t.Errorf("vector(16,2,64) = %v, want 64x2", d.Spec())
	}
	// blocklen == stride collapses to contiguous.
	d, err = Vector(4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != pattern.Contig() {
		t.Errorf("vector(4,8,8) = %v, want contiguous", d.Spec())
	}
	if _, err := Vector(4, 8, 4); err == nil {
		t.Error("stride < blocklen should fail")
	}
}

func TestIndexedClassifies(t *testing.T) {
	d, err := Indexed([]int{1, 1, 1}, []int64{0, 10, 17})
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != pattern.Indexed() {
		t.Errorf("irregular displacements = %v, want indexed", d.Spec())
	}
	// Regular displacements are recognized as strided.
	d, err = Indexed([]int{1, 1, 1}, []int64{0, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != pattern.Strided(8) {
		t.Errorf("regular displacements = %v, want stride 8", d.Spec())
	}
	if _, err := Indexed([]int{1}, []int64{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Indexed([]int{2, 2}, []int64{0, 1}); err == nil {
		t.Error("overlap should fail")
	}
	if _, err := Indexed([]int{1}, []int64{-1}); err == nil {
		t.Error("negative displacement should fail")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	d, err := Vector(8, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, d.Extent())
	for i := range buf {
		buf[i] = float64(i)
	}
	packed, err := d.Pack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != d.Words() {
		t.Fatalf("packed %d words", len(packed))
	}
	out := make([]float64, d.Extent())
	if err := d.Unpack(packed, out); err != nil {
		t.Fatal(err)
	}
	for _, o := range d.Offsets() {
		if out[o] != buf[o] {
			t.Fatalf("round trip broke at offset %d", o)
		}
	}
}

func TestPackBoundsChecked(t *testing.T) {
	d, _ := Contiguous(8)
	if _, err := d.Pack(make([]float64, 4)); err == nil {
		t.Error("short buffer should fail")
	}
	if err := d.Unpack(make([]float64, 8), make([]float64, 4)); err == nil {
		t.Error("short unpack buffer should fail")
	}
	if err := d.Unpack(make([]float64, 3), make([]float64, 8)); err == nil {
		t.Error("wrong data length should fail")
	}
}

func TestTransferMatrixColumn(t *testing.T) {
	// Send a matrix column (vector datatype) into a contiguous buffer:
	// the classic MPI derived-datatype example, and exactly the
	// paper's nQ1 transpose piece.
	const n = 8
	col, err := Vector(n, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Contiguous(n)
	if err != nil {
		t.Fatal(err)
	}
	matrix := make([]float64, n*n)
	for i := range matrix {
		matrix[i] = float64(i)
	}
	out := make([]float64, n)
	if err := Transfer(col, dst, matrix, out); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if out[r] != float64(r*n) {
			t.Fatalf("column element %d = %v, want %v", r, out[r], float64(r*n))
		}
	}
	// Type mismatch is rejected.
	short, _ := Contiguous(n - 1)
	if err := Transfer(col, short, matrix, out); err == nil {
		t.Error("signature mismatch should fail")
	}
}

func TestSendTimesLikeTheUnderlyingPatterns(t *testing.T) {
	m := machine.T3D()
	col, _ := Vector(1024, 1, 1024)
	dst, _ := Contiguous(1024)
	viaDT, err := Send(m, comm.Chained, col, dst, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comm.Run(m, comm.Chained, pattern.Strided(1024), pattern.Contig(),
		comm.Options{Words: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if viaDT.ElapsedNs != direct.ElapsedNs {
		t.Errorf("datatype send %.0f ns != pattern send %.0f ns", viaDT.ElapsedNs, direct.ElapsedNs)
	}
	if _, err := Send(m, comm.Chained, col, nil2(), comm.Options{}); err == nil {
		t.Error("mismatched types should fail")
	}
}

func nil2() *Datatype {
	d, _ := Contiguous(8)
	return d
}

func TestChainedBeatsPackedForVectorTypes(t *testing.T) {
	// The paper's conclusion in MPI terms: sending a strided derived
	// datatype chained beats the library's pack-and-ship path.
	m := machine.T3D()
	vec, _ := Vector(1<<12, 1, 64)
	dst, _ := Contiguous(1 << 12)
	packed, err := Send(m, comm.BufferPacking, vec, dst, comm.Options{Duplex: true})
	if err != nil {
		t.Fatal(err)
	}
	chained, err := Send(m, comm.Chained, vec, dst, comm.Options{Duplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if chained.MBps() <= packed.MBps() {
		t.Errorf("chained vector send %.1f <= packed %.1f MB/s", chained.MBps(), packed.MBps())
	}
}

// Property: pack/unpack is the identity on the datatype's footprint for
// arbitrary vector shapes.
func TestPackUnpackIdentityProperty(t *testing.T) {
	f := func(cRaw, bRaw, sRaw uint8) bool {
		count := int(cRaw)%20 + 1
		block := int(bRaw)%4 + 1
		stride := block + int(sRaw)%8
		d, err := Vector(count, block, stride)
		if err != nil {
			return false
		}
		buf := make([]float64, d.Extent())
		for i := range buf {
			buf[i] = float64(i * 3)
		}
		packed, err := d.Pack(buf)
		if err != nil {
			return false
		}
		out := make([]float64, d.Extent())
		if err := d.Unpack(packed, out); err != nil {
			return false
		}
		for _, o := range d.Offsets() {
			if out[o] != buf[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
