package sim

import "fmt"

// Resource models a serially-reusable unit (a processor, a DMA engine, a
// network link, the DRAM bank). Work is claimed in time order; a claim
// that arrives while the resource is busy is delayed until the resource
// frees. Resources also account their total busy time so utilization and
// bottleneck analyses can be reported.
type Resource struct {
	name     string
	freeAt   Time
	busy     Time
	claims   int64
	firstUse Time
	lastUse  Time
	everUsed bool
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name of the resource.
func (r *Resource) Name() string { return r.name }

// Claim reserves the resource for dur starting no earlier than at and
// returns the interval [start, end) actually granted. Claims serialize:
// if the resource is busy at at, the claim starts when it frees.
func (r *Resource) Claim(at Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative claim duration %v on %s", dur, r.name))
	}
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.claims++
	if !r.everUsed {
		r.firstUse = start
		r.everUsed = true
	}
	if end > r.lastUse {
		r.lastUse = end
	}
	return start, end
}

// ClaimBulk accounts n back-to-back claims whose aggregate effect an
// analytic fast path has already determined: the first claim starts at
// start, the last ends at end, and the claims occupy the resource for
// busy time in total. State afterwards is identical to issuing the n
// claims individually.
func (r *Resource) ClaimBulk(n int64, start, end, busy Time) {
	if n <= 0 {
		return
	}
	r.freeAt = end
	r.busy += busy
	r.claims += n
	if !r.everUsed {
		r.firstUse = start
		r.everUsed = true
	}
	if end > r.lastUse {
		r.lastUse = end
	}
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Busy returns the cumulative busy time of the resource.
func (r *Resource) Busy() Time { return r.busy }

// Claims returns how many times the resource was claimed.
func (r *Resource) Claims() int64 { return r.claims }

// Utilization returns busy time divided by the active span (first use to
// last use), or 0 if the resource was never used.
func (r *Resource) Utilization() float64 {
	if !r.everUsed || r.lastUse == r.firstUse {
		return 0
	}
	return float64(r.busy) / float64(r.lastUse-r.firstUse)
}

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	*r = Resource{name: r.name}
}

// Pipeline pushes a sequence of stage durations through an ordered list
// of resources, chunk by chunk, and returns the makespan. Chunk i may not
// enter stage s+1 before it leaves stage s, and each stage processes
// chunks in order (a classic flow-shop with FIFO stages). durations[i][s]
// is the service time of chunk i on stage s; a zero duration passes
// through instantly. This is the steady-state pipelining the paper
// assumes for composed transfers ("obtained through pipelining", §4).
func Pipeline(resources []*Resource, durations [][]Time) Time {
	if len(resources) == 0 {
		return 0
	}
	var finish Time
	ready := make([]Time, len(durations)) // when chunk i is ready for next stage
	for s, res := range resources {
		for i := range durations {
			d := durations[i][s]
			start, end := res.Claim(ready[i], d)
			_ = start
			ready[i] = end
			if end > finish {
				finish = end
			}
		}
	}
	return finish
}
