package sim

import "sync/atomic"

// Stats accumulates observability counters across simulator runs: how
// many discrete events engines dispatched, how many memory accesses the
// analytic memory simulators performed, and how much simulated time
// elapsed in total. A single Stats is typically attached to every
// simulator instance belonging to one experiment, so the experiment
// runner can attribute work per experiment even when many experiments
// execute concurrently.
//
// All methods are safe for concurrent use and nil-safe: recording into
// a nil *Stats is a no-op, so simulators can record unconditionally.
type Stats struct {
	events   atomic.Int64
	accesses atomic.Int64
	simNs    atomic.Int64
}

// RecordEvents adds n dispatched events and the simulated time elapsed
// while dispatching them.
func (s *Stats) RecordEvents(n int64, elapsed Time) {
	if s == nil {
		return
	}
	s.events.Add(n)
	if elapsed > 0 {
		s.simNs.Add(int64(elapsed))
	}
}

// RecordAccesses adds n simulated memory accesses and the simulated
// nanoseconds they took.
func (s *Stats) RecordAccesses(n int64, elapsedNs float64) {
	if s == nil {
		return
	}
	s.accesses.Add(n)
	if elapsedNs > 0 {
		s.simNs.Add(int64(elapsedNs + 0.5))
	}
}

// Events returns the total number of dispatched events recorded.
func (s *Stats) Events() int64 {
	if s == nil {
		return 0
	}
	return s.events.Load()
}

// Accesses returns the total number of memory accesses recorded.
func (s *Stats) Accesses() int64 {
	if s == nil {
		return 0
	}
	return s.accesses.Load()
}

// SimTime returns the accumulated simulated time. Because independent
// simulator runs each start their clock near zero, this is a measure of
// total simulated work, not a single timeline position.
func (s *Stats) SimTime() Time {
	if s == nil {
		return 0
	}
	return Time(s.simNs.Load())
}
