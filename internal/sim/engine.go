// Package sim provides a small discrete-event simulation engine with a
// nanosecond clock and serially-reusable resources. It is the timing
// substrate shared by the memory-system, network and machine simulators:
// all throughput figures in this repository are computed from simulated
// time, never from wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= 1e9:
		return fmt.Sprintf("%.3fs", float64(t)/1e9)
	case t >= 1e6:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts simulated time to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker for deterministic ordering
	fn  func()
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// create engines with NewEngine.
type Engine struct {
	now        Time
	seq        uint64
	dispatched int64
	queue      eventQueue
}

// NewEngine returns an engine with the clock at zero and an empty agenda.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at the absolute time at. Scheduling in the
// past panics: it indicates a causality bug in a model.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After enqueues fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Run executes events in timestamp order until the agenda is empty and
// returns the final clock value.
func (e *Engine) Run() Time {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.dispatched++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the later
// of the last executed event and the previous clock (never past events
// still pending).
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.dispatched++
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched returns the number of events this engine has executed.
func (e *Engine) Dispatched() int64 { return e.dispatched }
