package sim

import (
	"sync"
	"testing"
)

func TestEngineDispatchedCounts(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 5; i++ {
		e.Schedule(i, func() {})
	}
	if e.Dispatched() != 0 {
		t.Fatalf("Dispatched before Run = %d", e.Dispatched())
	}
	e.RunUntil(3)
	if e.Dispatched() != 3 {
		t.Fatalf("Dispatched after RunUntil(3) = %d, want 3", e.Dispatched())
	}
	e.Run()
	if e.Dispatched() != 5 {
		t.Fatalf("Dispatched after Run = %d, want 5", e.Dispatched())
	}
}

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.RecordEvents(10, 100) // must not panic
	s.RecordAccesses(10, 100)
	if s.Events() != 0 || s.Accesses() != 0 || s.SimTime() != 0 {
		t.Error("nil stats must read as zero")
	}
}

func TestStatsAccumulates(t *testing.T) {
	s := new(Stats)
	s.RecordEvents(5, 100)
	s.RecordEvents(7, 0)
	s.RecordAccesses(3, 49.6)
	if s.Events() != 12 {
		t.Errorf("Events = %d, want 12", s.Events())
	}
	if s.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", s.Accesses())
	}
	if s.SimTime() != 150 { // 100 + round(49.6)
		t.Errorf("SimTime = %d, want 150", s.SimTime())
	}
}

// Stats must be safe to share between engines running on different
// goroutines — the parallel experiment runner does exactly that when an
// experiment itself fans out (and -race verifies it here).
func TestStatsConcurrent(t *testing.T) {
	s := new(Stats)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.RecordEvents(1, 2)
				s.RecordAccesses(1, 1)
			}
		}()
	}
	wg.Wait()
	if s.Events() != 8000 || s.Accesses() != 8000 || s.SimTime() != 24000 {
		t.Errorf("concurrent totals wrong: events=%d accesses=%d sim=%d",
			s.Events(), s.Accesses(), s.SimTime())
	}
}
