package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := Time(2_000_000_000).Seconds(); s != 2.0 {
		t.Errorf("Seconds = %v, want 2.0", s)
	}
}

func TestEngineRunsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("ran %d events, want 5", len(got))
	}
}

func TestEngineTiesAreFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	end := e.Run()
	if end != 15 {
		t.Errorf("end = %v, want 15", end)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("After with negative delay should panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for _, at := range []Time{10, 20, 30, 40} {
		e.Schedule(at, func() { count++ })
	}
	e.RunUntil(25)
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 4 {
		t.Errorf("count after Run = %d, want 4", count)
	}
}

func TestResourceSerializesClaims(t *testing.T) {
	r := NewResource("cpu")
	s1, e1 := r.Claim(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Errorf("first claim [%v,%v), want [0,10)", s1, e1)
	}
	// Overlapping claim must be pushed back.
	s2, e2 := r.Claim(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Errorf("second claim [%v,%v), want [10,20)", s2, e2)
	}
	// A later claim starts on time.
	s3, e3 := r.Claim(100, 1)
	if s3 != 100 || e3 != 101 {
		t.Errorf("third claim [%v,%v), want [100,101)", s3, e3)
	}
	if r.Busy() != 21 {
		t.Errorf("busy = %v, want 21", r.Busy())
	}
	if r.Claims() != 3 {
		t.Errorf("claims = %d, want 3", r.Claims())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("link")
	r.Claim(0, 10)
	r.Claim(10, 10)
	if u := r.Utilization(); u != 1.0 {
		t.Errorf("fully busy utilization = %v, want 1.0", u)
	}
	r.Reset()
	if r.Utilization() != 0 {
		t.Error("utilization after reset should be 0")
	}
	r.Claim(0, 10)
	r.Claim(30, 10) // idle 10..30
	if u := r.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestResourceNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration should panic")
		}
	}()
	NewResource("x").Claim(0, -1)
}

// Property: claims never overlap and never start before requested.
func TestResourceClaimProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("p")
		var lastEnd Time
		at := Time(0)
		for _, q := range reqs {
			dur := Time(q % 100)
			start, end := r.Claim(at, dur)
			if start < at || start < lastEnd || end != start+dur {
				return false
			}
			lastEnd = end
			at += Time(q % 37) // requests move forward in time
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipelineSingleStage(t *testing.T) {
	r := []*Resource{NewResource("s0")}
	d := [][]Time{{10}, {10}, {10}}
	if got := Pipeline(r, d); got != 30 {
		t.Errorf("makespan = %v, want 30", got)
	}
}

func TestPipelineBottleneckDominates(t *testing.T) {
	// Three stages; middle stage is the bottleneck at 10 per chunk.
	rs := []*Resource{NewResource("a"), NewResource("b"), NewResource("c")}
	const n = 100
	d := make([][]Time, n)
	for i := range d {
		d[i] = []Time{2, 10, 3}
	}
	got := Pipeline(rs, d)
	// Steady state: n*10 plus pipeline fill (2) and drain (3).
	want := Time(n*10 + 2 + 3)
	if got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestPipelineEmpty(t *testing.T) {
	if got := Pipeline(nil, nil); got != 0 {
		t.Errorf("empty pipeline makespan = %v, want 0", got)
	}
}

// Property: pipeline makespan is at least the busiest stage's total work
// and at most the sum of all work (fully serial execution).
func TestPipelineBoundsProperty(t *testing.T) {
	f := func(work [][3]uint8) bool {
		if len(work) == 0 {
			return true
		}
		rs := []*Resource{NewResource("a"), NewResource("b"), NewResource("c")}
		d := make([][]Time, len(work))
		var stageSum [3]Time
		var total Time
		for i, w := range work {
			d[i] = []Time{Time(w[0]), Time(w[1]), Time(w[2])}
			for s := 0; s < 3; s++ {
				stageSum[s] += d[i][s]
				total += d[i][s]
			}
		}
		m := Pipeline(rs, d)
		maxStage := stageSum[0]
		for _, s := range stageSum[1:] {
			if s > maxStage {
				maxStage = s
			}
		}
		return m >= maxStage && m <= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
