package table

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Sample",
		Header: []string{"name", "value"},
	}
	t.AddRow("alpha", "1.0")
	t.AddRow("beta", "22.5")
	t.AddNote("a note with %d parts", 2)
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sample", "name", "alpha", "22.5", "note: a note with 2 parts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and data lines align: same length prefix columns.
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tab := &Table{Header: []string{"a"}}
	tab.AddRow("x", "extra")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("x,y", "plain")
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",plain\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

// awkwardCells covers every character class the writers must escape:
// commas, double quotes, pipes, and line breaks (both kinds).
var awkwardCells = [][]string{
	{"plain", "with,comma"},
	{`say "hi"`, `comma, and "quote"`},
	{"pipe|in|cell", "line\nbreak"},
	{"crlf\r\nbreak", `""`},
}

// TestCSVRoundTrip feeds the CSV output back through encoding/csv and
// requires every awkward cell to come back byte-identical (RFC 4180).
func TestCSVRoundTrip(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	for _, r := range awkwardCells {
		tab.AddRow(r...)
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output does not re-parse as CSV: %v", err)
	}
	// encoding/csv's reader normalizes \r\n to \n inside quoted fields
	// (documented Reader behavior), so compare against that form.
	want := [][]string{{"a", "b"}}
	for _, r := range awkwardCells {
		row := make([]string, len(r))
		for j, c := range r {
			row[j] = strings.ReplaceAll(c, "\r\n", "\n")
		}
		want = append(want, row)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %q\nwant %q", got, want)
	}
}

// TestMarkdownEscaping checks that cell contents cannot break the
// table structure: pipes are escaped and line breaks folded to <br>,
// so every output line still has exactly the header's column count.
func TestMarkdownEscaping(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	for _, r := range awkwardCells {
		tab.AddRow(r...)
	}
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`pipe\|in\|cell`, "line<br>break", "crlf<br>break"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		// Unescaped pipes delimit cells; escaped ones do not count.
		cells := strings.Count(strings.ReplaceAll(line, `\|`, ""), "|") - 1
		if cells != len(tab.Header) {
			t.Errorf("line %d has %d cells, want %d: %q", i, cells, len(tab.Header), line)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.25) != "1.2" && F(1.25) != "1.3" {
		t.Errorf("F(1.25) = %q", F(1.25))
	}
	if F2(1.256) != "1.26" {
		t.Errorf("F2 = %q", F2(1.256))
	}
	if Delta(110, 100) != "+10%" {
		t.Errorf("Delta = %q", Delta(110, 100))
	}
	if Delta(90, 100) != "-10%" {
		t.Errorf("Delta = %q", Delta(90, 100))
	}
	if Delta(1, 0) != "n/a" {
		t.Errorf("Delta(1,0) = %q", Delta(1, 0))
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	err := Bars(&buf, "Rates", []string{"packed", "chained"}, []float64{20, 40}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Rates") || !strings.Contains(out, "chained") {
		t.Errorf("missing content:\n%s", out)
	}
	// The larger value gets the full width, the smaller roughly half.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	packedHashes := strings.Count(lines[1], "#")
	chainedHashes := strings.Count(lines[2], "#")
	if chainedHashes != 20 || packedHashes != 10 {
		t.Errorf("bar widths = %d/%d, want 10/20", packedHashes, chainedHashes)
	}
}

func TestBarsValidation(t *testing.T) {
	if err := Bars(&bytes.Buffer{}, "", []string{"a"}, nil, 10); err == nil {
		t.Error("mismatched lengths should fail")
	}
	// Zero values render empty bars without dividing by zero.
	if err := Bars(&bytes.Buffer{}, "", []string{"a"}, []float64{0}, 10); err != nil {
		t.Error(err)
	}
}

func TestMarkdown(t *testing.T) {
	tab := sample()
	tab.Figure = "bar\n"
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**Sample**", "| name | value |", "| --- | --- |",
		"| alpha | 1.0 |", "```", "> a note with 2 parts"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
