// Package table renders plain-text tables for the experiment harness.
package table

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row, optional notes,
// and an optional pre-rendered figure (e.g. an ASCII bar chart) printed
// after the rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Figure string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Figure != "" {
		b.WriteByte('\n')
		b.WriteString(t.Figure)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (header + rows),
// quoting per RFC 4180: a cell containing a comma, quote, or line
// break is wrapped in double quotes with embedded quotes doubled, so
// encoding/csv (and spreadsheets) read it back verbatim.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(r []string) error {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes one CSV cell per RFC 4180 when needed.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// mdEscape makes one cell safe inside a markdown table row: pipes
// would end the cell and raw line breaks would end the row, so escape
// the former and fold the latter to <br>.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	s = strings.ReplaceAll(s, "\r\n", "<br>")
	s = strings.ReplaceAll(s, "\n", "<br>")
	s = strings.ReplaceAll(s, "\r", "<br>")
	return s
}

// F formats a throughput or ratio with one decimal.
func F(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F2 formats with two decimals.
func F2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// Delta formats the relative difference of got vs want as "+12%".
func Delta(got, want float64) string {
	if want == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (got/want-1)*100)
}

// Bars renders a horizontal ASCII bar chart of labeled values, scaled
// to width characters at the maximum value — the figure-style view of
// the experiment tables.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("table: %d labels for %d values", len(labels), len(values))
	}
	if width < 8 {
		width = 40
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v/max*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "  %-*s %7.1f %s\n", labelW, labels[i], v, strings.Repeat("#", n))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as GitHub-flavored markdown.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + mdEscape(c) + " |")
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		// Pad ragged rows to the header width for valid markdown.
		cells := make([]string, len(t.Header))
		copy(cells, r)
		row(cells)
	}
	b.WriteByte('\n')
	if t.Figure != "" {
		fmt.Fprintf(&b, "```\n%s```\n\n", t.Figure)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
