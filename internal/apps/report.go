// Package apps holds shared types for the application kernels of paper
// §6: the 2D-FFT transpose, the FEM iterative solver, and the SOR
// stencil. Each kernel computes real results in Go while its
// communication steps are timed on the simulated machines through
// internal/comm, yielding the per-node communication throughput the
// paper reports in Table 6.
package apps

// CommReport accumulates the simulated communication cost of an
// application phase.
type CommReport struct {
	Messages     int
	PayloadBytes int64
	ElapsedNs    float64
}

// Add merges another report (e.g. a second phase) into r.
func (r *CommReport) Add(o CommReport) {
	r.Messages += o.Messages
	r.PayloadBytes += o.PayloadBytes
	r.ElapsedNs += o.ElapsedNs
}

// MBps returns the per-node communication throughput in MB/s, the
// metric of the paper's Table 6.
func (r CommReport) MBps() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.PayloadBytes) * 1e3 / r.ElapsedNs
}

// DefaultBarrierNs is the per-communication-step synchronization cost:
// compiled communication steps are bracketed by synchronization
// (paper §2.1 and [16]); this is the runtime's barrier latency.
const DefaultBarrierNs = 30e3
