package fem

import (
	"fmt"
	"sort"
)

// Partition assigns mesh vertices to parts by recursive coordinate
// bisection: the vertex set is recursively split at the median of its
// widest coordinate axis, producing the "well partitioned grid" of
// paper §6.1.2. parts must be a power of two.
func Partition(m *Mesh, parts int) ([]int32, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("fem: parts must be a positive power of two, got %d", parts)
	}
	if m.Vertices() < parts {
		return nil, fmt.Errorf("fem: %d vertices cannot fill %d parts", m.Vertices(), parts)
	}
	assign := make([]int32, m.Vertices())
	ids := make([]int32, m.Vertices())
	for i := range ids {
		ids[i] = int32(i)
	}
	rcb(m, ids, 0, parts, assign)
	return assign, nil
}

// rcb recursively bisects the vertices in ids into parts, writing part
// numbers starting at base.
func rcb(m *Mesh, ids []int32, base, parts int, assign []int32) {
	if parts == 1 {
		for _, v := range ids {
			assign[v] = int32(base)
		}
		return
	}
	// Pick the widest axis.
	var lo, hi [3]float64
	for c := 0; c < 3; c++ {
		lo[c], hi[c] = 1e300, -1e300
	}
	for _, v := range ids {
		for c := 0; c < 3; c++ {
			x := m.Coords[v][c]
			if x < lo[c] {
				lo[c] = x
			}
			if x > hi[c] {
				hi[c] = x
			}
		}
	}
	axis := 0
	for c := 1; c < 3; c++ {
		if hi[c]-lo[c] > hi[axis]-lo[axis] {
			axis = c
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		return m.Coords[ids[i]][axis] < m.Coords[ids[j]][axis]
	})
	mid := len(ids) / 2
	rcb(m, ids[:mid], base, parts/2, assign)
	rcb(m, ids[mid:], base+parts/2, parts/2, assign)
}

// PartSizes returns how many vertices each part owns.
func PartSizes(assign []int32, parts int) []int {
	sizes := make([]int, parts)
	for _, p := range assign {
		sizes[p]++
	}
	return sizes
}

// EdgeCut counts undirected edges crossing part boundaries.
func EdgeCut(m *Mesh, assign []int32) int {
	cut := 0
	for v, adj := range m.Adj {
		for _, w := range adj {
			if int32(v) < w && assign[v] != assign[w] {
				cut++
			}
		}
	}
	return cut
}

// Halo describes the values part p must receive from part q each solver
// step: the indices (in q's vertex set) of q-owned vertices adjacent to
// p-owned vertices.
type Halo struct {
	From, To int32
	Indices  []int32 // vertex ids owned by From, needed by To
}

// Halos computes every directed halo exchange of a partitioning. Each
// Halo is one ωQω message per solver iteration; the index arrays are
// exactly the "intermediate index array T" of paper Figure 2.
func Halos(m *Mesh, assign []int32, parts int) []Halo {
	type key struct{ from, to int32 }
	sets := make(map[key]map[int32]bool)
	for v, adj := range m.Adj {
		for _, w := range adj {
			pv, pw := assign[v], assign[w]
			if pv == pw {
				continue
			}
			// v's owner needs w's value: w's owner (pw) sends to pv.
			k := key{from: pw, to: pv}
			s, ok := sets[k]
			if !ok {
				s = make(map[int32]bool)
				sets[k] = s
			}
			s[w] = true
		}
	}
	halos := make([]Halo, 0, len(sets))
	for k, s := range sets {
		idx := make([]int32, 0, len(s))
		for v := range s {
			idx = append(idx, v)
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
		halos = append(halos, Halo{From: k.from, To: k.to, Indices: idx})
	}
	sort.Slice(halos, func(i, j int) bool {
		if halos[i].From != halos[j].From {
			return halos[i].From < halos[j].From
		}
		return halos[i].To < halos[j].To
	})
	return halos
}
