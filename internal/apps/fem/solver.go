package fem

import (
	"fmt"
	"math"

	"ctcomm/internal/apps"
	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
	"ctcomm/internal/pattern"
)

// CSR is a sparse matrix in compressed-sparse-row form.
type CSR struct {
	N      int
	RowPtr []int64
	Col    []int32
	Val    []float64
}

// MulVec computes y = A·x.
func (a *CSR) MulVec(x, y []float64) {
	for i := 0; i < a.N; i++ {
		sum := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			sum += a.Val[p] * x[a.Col[p]]
		}
		y[i] = sum
	}
}

// Config describes a distributed FEM solve.
type Config struct {
	M     *machine.Machine
	Style comm.Style
	// Parts is the partition count (power of two); zero selects the
	// machine's node count.
	Parts int
	// Tol is the relative residual target; zero selects 1e-8.
	Tol float64
	// MaxIter bounds the CG iterations; zero selects 2*N.
	MaxIter int
	// BarrierNs is the per-step synchronization cost; zero selects
	// apps.DefaultBarrierNs, negative disables.
	BarrierNs float64
	// Seed controls the mesh generator in SolveValley.
	Seed uint64
}

func (c *Config) normalize(n int) {
	if c.Parts <= 0 {
		c.Parts = c.M.Nodes()
	}
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 2 * n
	}
	if c.BarrierNs == 0 {
		c.BarrierNs = apps.DefaultBarrierNs
	}
	if c.BarrierNs < 0 {
		c.BarrierNs = 0
	}
}

// Result reports a distributed solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64
	Comm       apps.CommReport
	// HaloWords is the average number of words one node exchanges per
	// iteration — the "fraction of the local data elements" of §6.1.2.
	HaloWords int
	EdgeCut   int
}

// Solve runs conjugate gradients on A·x = b with the communication cost
// of the partitioned halo exchanges simulated per iteration. The
// numerical solve itself is exact (the full vector is available); the
// partitioning determines only the simulated communication.
func Solve(cfg Config, mesh *Mesh, a *CSR, b []float64) (*Result, error) {
	if a.N != len(b) {
		return nil, fmt.Errorf("fem: dimension mismatch %d vs %d", a.N, len(b))
	}
	cfg.normalize(a.N)

	assign, err := Partition(mesh, cfg.Parts)
	if err != nil {
		return nil, err
	}
	halos := Halos(mesh, assign, cfg.Parts)

	// Per-iteration communication: every halo is one indexed-gather,
	// indexed-scatter message (ωQω). All nodes exchange simultaneously,
	// so messages of different nodes overlap; messages of one node
	// serialize. Elapsed per iteration = max over nodes of the node's
	// serialized send time.
	perIter, haloWords, err := haloCost(cfg, halos)
	if err != nil {
		return nil, err
	}

	// Conjugate gradients.
	n := a.N
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rr := dot(r, r)
	bb := math.Sqrt(dot(b, b))
	if bb == 0 {
		bb = 1
	}
	var iters int
	for iters = 0; iters < cfg.MaxIter; iters++ {
		if math.Sqrt(rr)/bb <= cfg.Tol {
			break
		}
		a.MulVec(p, ap)
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rr2 := dot(r, r)
		beta := rr2 / rr
		rr = rr2
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}

	var rep apps.CommReport
	rep.Messages = len(halos) * iters
	rep.ElapsedNs = perIter.ElapsedNs * float64(iters)
	rep.PayloadBytes = perIter.PayloadBytes * int64(iters)
	return &Result{
		X:          x,
		Iterations: iters,
		Residual:   math.Sqrt(rr) / bb,
		Comm:       rep,
		HaloWords:  haloWords,
		EdgeCut:    EdgeCut(mesh, assign),
	}, nil
}

// haloCost simulates one iteration's halo exchange. It returns the
// per-node report for a single iteration (payload = average per-node
// bytes sent, elapsed = the slowest node's send time plus barrier) and
// the average per-node halo size in words.
func haloCost(cfg Config, halos []Halo) (apps.CommReport, int, error) {
	var rep apps.CommReport
	perNodeNs := make([]float64, cfg.Parts)
	var totalWords int64
	congestion := comm.CongestionFor(cfg.M, comm.ShiftPattern)
	for _, h := range halos {
		words := len(h.Indices)
		if words == 0 {
			continue
		}
		res, err := comm.Run(cfg.M, cfg.Style, pattern.Indexed(), pattern.Indexed(), comm.Options{
			Words:      words,
			Congestion: congestion,
			Duplex:     true,
		})
		if err != nil {
			return rep, 0, err
		}
		perNodeNs[h.From] += res.ElapsedNs
		totalWords += int64(words)
	}
	slowest := 0.0
	for _, t := range perNodeNs {
		if t > slowest {
			slowest = t
		}
	}
	rep.Messages = len(halos)
	rep.ElapsedNs = slowest + cfg.BarrierNs
	rep.PayloadBytes = totalWords * pattern.WordBytes / int64(cfg.Parts)
	return rep, int(totalWords) / cfg.Parts, nil
}

// SolveValley generates the synthetic valley mesh, builds its Laplacian
// system with a deterministic right-hand side, and solves it.
func SolveValley(cfg Config, nx, ny, nz int) (*Result, *Mesh, error) {
	mesh, err := GenValley(nx, ny, nz, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	a := mesh.Laplacian()
	b := make([]float64, a.N)
	for i := range b {
		// Deterministic, non-trivial load vector.
		b[i] = math.Sin(float64(i)*0.7) + 0.5
	}
	res, err := Solve(cfg, mesh, a, b)
	if err != nil {
		return nil, nil, err
	}
	return res, mesh, nil
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
