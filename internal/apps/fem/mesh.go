// Package fem implements the finite-element application kernel of paper
// §6.1.2: an iterative solver on a partitioned irregular 3D mesh (the
// paper's graph models an alluvial valley surrounded by hard rock, used
// for earthquake simulation). Only a fraction of each partition's
// values is exchanged per solver step, through index arrays — the ωQω
// communication pattern.
package fem

import (
	"fmt"
	"math"
)

// Mesh is an irregular 3D vertex graph with symmetric adjacency.
type Mesh struct {
	Coords [][3]float64
	Adj    [][]int32
}

// Vertices returns the vertex count.
func (m *Mesh) Vertices() int { return len(m.Coords) }

// Edges returns the number of undirected edges.
func (m *Mesh) Edges() int {
	total := 0
	for _, a := range m.Adj {
		total += len(a)
	}
	return total / 2
}

// rng is a small deterministic generator (duplicated from pattern to
// keep packages decoupled).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// GenValley generates a synthetic "alluvial valley" mesh: an nx×ny×nz
// layered grid whose depth follows a valley profile (deep soft sediment
// in the middle, shallow at the rock edges), with jittered coordinates
// and extra irregular edges so the graph is not a regular stencil.
// The same seed always produces the same mesh.
func GenValley(nx, ny, nz int, seed uint64) (*Mesh, error) {
	if nx < 2 || ny < 2 || nz < 1 {
		return nil, fmt.Errorf("fem: mesh dims %dx%dx%d too small", nx, ny, nz)
	}
	if seed == 0 {
		seed = 0xFEA2B3C4D5E6F708
	}
	r := &rng{s: seed}

	// Valley depth profile: number of layers under (x,y) follows a
	// raised-cosine bowl; edge columns sit on "rock" with few layers.
	depth := make([][]int, nx)
	id := make([][][]int, nx)
	count := 0
	for i := 0; i < nx; i++ {
		depth[i] = make([]int, ny)
		id[i] = make([][]int, ny)
		for j := 0; j < ny; j++ {
			fx := float64(i)/float64(nx-1)*2 - 1
			fy := float64(j)/float64(ny-1)*2 - 1
			bowl := math.Cos(fx*math.Pi/2) * math.Cos(fy*math.Pi/2)
			layers := 1 + int(bowl*float64(nz-1)+0.5)
			depth[i][j] = layers
			id[i][j] = make([]int, layers)
			for k := 0; k < layers; k++ {
				id[i][j][k] = count
				count++
			}
		}
	}

	m := &Mesh{
		Coords: make([][3]float64, count),
		Adj:    make([][]int32, count),
	}
	addEdge := func(a, b int) {
		for _, v := range m.Adj[a] {
			if v == int32(b) {
				return
			}
		}
		m.Adj[a] = append(m.Adj[a], int32(b))
		m.Adj[b] = append(m.Adj[b], int32(a))
	}

	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < depth[i][j]; k++ {
				v := id[i][j][k]
				jit := func() float64 { return (r.float() - 0.5) * 0.4 }
				m.Coords[v] = [3]float64{
					float64(i) + jit(),
					float64(j) + jit(),
					float64(k) + jit(),
				}
				// Vertical edge within the column.
				if k > 0 {
					addEdge(v, id[i][j][k-1])
				}
				// Lateral edges to neighbor columns (clamped to their depth).
				for _, d := range [][2]int{{1, 0}, {0, 1}} {
					ni, nj := i+d[0], j+d[1]
					if ni >= nx || nj >= ny {
						continue
					}
					nk := k
					if nk >= depth[ni][nj] {
						nk = depth[ni][nj] - 1
					}
					addEdge(v, id[ni][nj][nk])
				}
			}
		}
	}

	// Irregular extra edges: short-range random diagonals (about 10% of
	// vertices get one), which break the stencil regularity like the
	// unstructured tetrahedra of the original mesh.
	for v := 0; v < count; v++ {
		if r.intn(10) != 0 {
			continue
		}
		i := r.intn(nx)
		j := r.intn(ny)
		k := r.intn(depth[i][j])
		w := id[i][j][k]
		if w == v {
			continue
		}
		d := 0.0
		for c := 0; c < 3; c++ {
			d += math.Abs(m.Coords[v][c] - m.Coords[w][c])
		}
		if d < 4 { // keep the extra edges local
			addEdge(v, w)
		}
	}
	return m, nil
}

// Laplacian builds the SPD sparse system matrix A = L + I from the mesh
// graph (graph Laplacian plus a mass term) in CSR form.
func (m *Mesh) Laplacian() *CSR {
	n := m.Vertices()
	rowPtr := make([]int64, n+1)
	nnz := 0
	for v := 0; v < n; v++ {
		nnz += len(m.Adj[v]) + 1
	}
	col := make([]int32, 0, nnz)
	val := make([]float64, 0, nnz)
	for v := 0; v < n; v++ {
		deg := float64(len(m.Adj[v]))
		// Diagonal first, then neighbors.
		col = append(col, int32(v))
		val = append(val, deg+1)
		for _, w := range m.Adj[v] {
			col = append(col, w)
			val = append(val, -1)
		}
		rowPtr[v+1] = int64(len(col))
	}
	return &CSR{N: n, RowPtr: rowPtr, Col: col, Val: val}
}
