package fem

import (
	"math"
	"testing"
	"testing/quick"

	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
)

func testMesh(t *testing.T) *Mesh {
	t.Helper()
	m, err := GenValley(12, 12, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenValleyDeterministic(t *testing.T) {
	a, _ := GenValley(8, 8, 4, 7)
	b, _ := GenValley(8, 8, 4, 7)
	if a.Vertices() != b.Vertices() || a.Edges() != b.Edges() {
		t.Fatal("mesh generation not deterministic")
	}
	c, _ := GenValley(8, 8, 4, 8)
	if a.Edges() == c.Edges() && a.Vertices() == c.Vertices() {
		// Different seeds may coincide in counts, but the coordinates
		// must differ.
		same := true
		for i := range a.Coords {
			if a.Coords[i] != c.Coords[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical meshes")
		}
	}
}

func TestGenValleyValidation(t *testing.T) {
	if _, err := GenValley(1, 8, 4, 1); err == nil {
		t.Error("tiny mesh should fail")
	}
}

func TestValleyIsIrregular(t *testing.T) {
	m := testMesh(t)
	// Vertex degrees must vary (irregular graph, not a stencil).
	degrees := map[int]bool{}
	for _, adj := range m.Adj {
		degrees[len(adj)] = true
	}
	if len(degrees) < 3 {
		t.Errorf("only %d distinct degrees; mesh looks regular", len(degrees))
	}
	// The valley profile means columns have different depths: vertex
	// count is well below the full box.
	if m.Vertices() >= 12*12*6 {
		t.Error("valley profile missing: full box generated")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	m := testMesh(t)
	for v, adj := range m.Adj {
		for _, w := range adj {
			found := false
			for _, u := range m.Adj[w] {
				if u == int32(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", v, w)
			}
		}
	}
}

func TestLaplacianSPDish(t *testing.T) {
	m := testMesh(t)
	a := m.Laplacian()
	// Strict diagonal dominance: diag = degree+1, off-diag sum = degree.
	for i := 0; i < a.N; i++ {
		var diag, off float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.Col[p] == int32(i) {
				diag = a.Val[p]
			} else {
				off += math.Abs(a.Val[p])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %g vs %g", i, diag, off)
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	m := testMesh(t)
	for _, parts := range []int{2, 4, 8, 16} {
		assign, err := Partition(m, parts)
		if err != nil {
			t.Fatal(err)
		}
		sizes := PartSizes(assign, parts)
		min, max := m.Vertices(), 0
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Errorf("parts=%d: imbalance %d..%d", parts, min, max)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	m := testMesh(t)
	if _, err := Partition(m, 3); err == nil {
		t.Error("non-power-of-two parts should fail")
	}
	if _, err := Partition(m, 0); err == nil {
		t.Error("zero parts should fail")
	}
	if _, err := Partition(m, 1<<20); err == nil {
		t.Error("more parts than vertices should fail")
	}
}

func TestEdgeCutSmallerThanTotal(t *testing.T) {
	m := testMesh(t)
	assign, _ := Partition(m, 8)
	cut := EdgeCut(m, assign)
	if cut <= 0 {
		t.Error("partitioned mesh must have a positive edge cut")
	}
	// A "well partitioned" mesh exchanges only a fraction of its data
	// (paper §6.1.2): the cut must be well below the edge total.
	if frac := float64(cut) / float64(m.Edges()); frac > 0.35 {
		t.Errorf("edge cut fraction %.2f too high for RCB", frac)
	}
}

func TestHalosConsistent(t *testing.T) {
	m := testMesh(t)
	const parts = 8
	assign, _ := Partition(m, parts)
	halos := Halos(m, assign, parts)
	if len(halos) == 0 {
		t.Fatal("no halos on a partitioned mesh")
	}
	for _, h := range halos {
		if h.From == h.To {
			t.Fatal("self halo")
		}
		if len(h.Indices) == 0 {
			t.Fatal("empty halo")
		}
		for i, v := range h.Indices {
			if assign[v] != h.From {
				t.Fatalf("halo %d->%d contains vertex %d owned by %d", h.From, h.To, v, assign[v])
			}
			if i > 0 && h.Indices[i] <= h.Indices[i-1] {
				t.Fatal("halo indices not sorted")
			}
			// The vertex must actually border part To.
			borders := false
			for _, w := range m.Adj[v] {
				if assign[w] == h.To {
					borders = true
					break
				}
			}
			if !borders {
				t.Fatalf("vertex %d in halo %d->%d has no neighbor there", v, h.From, h.To)
			}
		}
	}
}

func TestCSRMulVec(t *testing.T) {
	// 2x2: [[2,-1],[-1,2]] * [1,1] = [1,1]
	a := &CSR{N: 2, RowPtr: []int64{0, 2, 4}, Col: []int32{0, 1, 0, 1}, Val: []float64{2, -1, -1, 2}}
	y := make([]float64, 2)
	a.MulVec([]float64{1, 1}, y)
	if y[0] != 1 || y[1] != 1 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestSolveConverges(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained, Parts: 8, Seed: 42}
	res, mesh, err := SolveValley(cfg, 10, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-8 {
		t.Errorf("CG did not converge: residual %g after %d iterations", res.Residual, res.Iterations)
	}
	// Verify the solution satisfies A·x = b.
	a := mesh.Laplacian()
	b := make([]float64, a.N)
	for i := range b {
		b[i] = math.Sin(float64(i)*0.7) + 0.5
	}
	ax := make([]float64, a.N)
	a.MulVec(res.X, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual check failed at %d: %g vs %g", i, ax[i], b[i])
		}
	}
	if res.Comm.Messages == 0 || res.Comm.ElapsedNs <= 0 {
		t.Errorf("missing comm report: %+v", res.Comm)
	}
	if res.HaloWords <= 0 {
		t.Error("halo words should be positive")
	}
}

func TestChainedFEMBeatsPacked(t *testing.T) {
	// Table 6: FEM chained 14.2 vs packed 12.2 MB/s.
	packed := Config{M: machine.T3D(), Style: comm.BufferPacking, Parts: 16, Seed: 9}
	chained := Config{M: machine.T3D(), Style: comm.Chained, Parts: 16, Seed: 9}
	rp, _, err := SolveValley(packed, 12, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	rc, _, err := SolveValley(chained, 12, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Comm.MBps() <= rp.Comm.MBps() {
		t.Errorf("chained FEM %.1f <= packed %.1f MB/s", rc.Comm.MBps(), rp.Comm.MBps())
	}
}

func TestPartitionCoversAllVerticesProperty(t *testing.T) {
	m := testMesh(t)
	f := func(pRaw uint8) bool {
		parts := 1 << (pRaw % 5) // 1..16
		assign, err := Partition(m, parts)
		if err != nil {
			return false
		}
		for _, p := range assign {
			if p < 0 || int(p) >= parts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
