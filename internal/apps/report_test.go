package apps

import "testing"

func TestCommReportMBps(t *testing.T) {
	r := CommReport{PayloadBytes: 1000, ElapsedNs: 1000}
	if r.MBps() != 1000 {
		t.Errorf("MBps = %v, want 1000", r.MBps())
	}
	if (CommReport{}).MBps() != 0 {
		t.Error("empty report should be 0 MB/s")
	}
}

func TestCommReportAdd(t *testing.T) {
	a := CommReport{Messages: 1, PayloadBytes: 10, ElapsedNs: 100}
	b := CommReport{Messages: 2, PayloadBytes: 20, ElapsedNs: 200}
	a.Add(b)
	if a.Messages != 3 || a.PayloadBytes != 30 || a.ElapsedNs != 300 {
		t.Errorf("Add result wrong: %+v", a)
	}
}

func TestComputeEstimates(t *testing.T) {
	// 1024^2 2D FFT: 2 * 1024 * 5 * 1024 * 10 flops ~ 105 Mflops.
	flops := FlopsFFT2D(1024)
	if flops < 100e6 || flops > 110e6 {
		t.Errorf("FFT2D flops = %g, want ~105e6", flops)
	}
	// At 50 MFLOPS that is ~2.1 seconds across the machine... per node
	// on 64 nodes it is ~33 ms of compute.
	ns := TimeNs(flops/64, 0)
	if ns < 30e6 || ns > 36e6 {
		t.Errorf("per-node FFT compute = %g ns", ns)
	}
	if got := FlopsSORSweep(256); got != 6*254*254 {
		t.Errorf("SOR sweep flops = %g", got)
	}
	if got := FlopsCGIter(1000, 100); got != 3000 {
		t.Errorf("CG iter flops = %g", got)
	}
	if CommFraction(1, 3) != 0.25 {
		t.Error("CommFraction wrong")
	}
	if CommFraction(0, 0) != 0 {
		t.Error("empty CommFraction should be 0")
	}
}

func TestCommunicationIsSubstantialForTranspose(t *testing.T) {
	// The paper's motivating premise: even with the FFT's O(n^2 log n)
	// compute, the transpose communication claims a substantial share
	// of the kernel at 1995 rates. Per node on 64 nodes: compute
	// ~33 ms; communication of 2 transposes ~ 2 * 16 MB / 64 / 25 MB/s
	// ~ 20 ms -> fraction ~0.4.
	computeNs := TimeNs(FlopsFFT2D(1024)/64, 0)
	perNodeBytes := 2.0 * 16e6 / 64 // two transposes of a 16 MB array
	commNs := perNodeBytes / 25.0 * 1e3
	frac := CommFraction(commNs, computeNs)
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("transpose comm fraction = %.2f, expected substantial (0.2-0.6)", frac)
	}
}
