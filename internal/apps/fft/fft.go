// Package fft implements the 2D-FFT application kernel of paper §6.1.1:
// radix-2 complex FFTs computed locally plus the distributed array
// transpose whose communication step the paper measures. The transpose
// is the performance-critical redistribution: it turns a row-major
// distribution into a column-major one so the column FFTs run with
// locality (paper Figure 9).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two. With inverse set, the inverse
// transform (including the 1/n scaling) is computed.
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// DFT computes the naive O(n^2) discrete Fourier transform, used as the
// reference in tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

// Transpose returns the transpose of a rectangular matrix.
func Transpose(a [][]complex128) [][]complex128 {
	if len(a) == 0 {
		return nil
	}
	rows, cols := len(a), len(a[0])
	out := make([][]complex128, cols)
	cells := make([]complex128, rows*cols)
	for j := range out {
		out[j], cells = cells[:rows], cells[rows:]
		for i := 0; i < rows; i++ {
			out[j][i] = a[i][j]
		}
	}
	return out
}

// FFT2D computes the in-place 2D FFT of a square power-of-two matrix:
// row FFTs, transpose, row FFTs (i.e. column FFTs), transpose back.
func FFT2D(a [][]complex128, inverse bool) ([][]complex128, error) {
	n := len(a)
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("fft: matrix is not square")
		}
	}
	for _, row := range a {
		if err := FFT(row, inverse); err != nil {
			return nil, err
		}
	}
	t := Transpose(a)
	for _, row := range t {
		if err := FFT(row, inverse); err != nil {
			return nil, err
		}
	}
	return Transpose(t), nil
}

// DFT2D is the naive reference 2D transform.
func DFT2D(a [][]complex128) [][]complex128 {
	rows := make([][]complex128, len(a))
	for i, r := range a {
		rows[i] = DFT(r)
	}
	t := Transpose(rows)
	for j, c := range t {
		t[j] = DFT(c)
	}
	return Transpose(t)
}
