package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
)

func randMatrix(n int, seed uint64) [][]complex128 {
	s := seed | 1
	next := func() float64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return float64((s*0x2545F4914F6CDD1D)>>11)/(1<<53) - 0.5
	}
	a := make([][]complex128, n)
	for i := range a {
		a[i] = make([]complex128, n)
		for j := range a[i] {
			a[i][j] = complex(next(), next())
		}
	}
	return a
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := randMatrix(n, 7)[0][:n]
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got, false); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT differs from DFT by %g", n, d)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 12} {
		if err := FFT(make([]complex128, n), false); err == nil {
			t.Errorf("FFT of length %d should fail", n)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		x := randMatrix(64, seed)[0]
		orig := append([]complex128(nil), x...)
		if err := FFT(x, false); err != nil {
			return false
		}
		if err := FFT(x, true); err != nil {
			return false
		}
		return maxDiff(x, orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy is preserved up to the 1/n convention: sum|X|^2 = n*sum|x|^2.
	f := func(seed uint64) bool {
		x := randMatrix(32, seed)[0]
		var inEnergy float64
		for _, v := range x {
			inEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		if err := FFT(x, false); err != nil {
			return false
		}
		var outEnergy float64
		for _, v := range x {
			outEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(outEnergy-32*inEnergy) < 1e-6*(1+outEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := randMatrix(16, 3)
	tt := Transpose(Transpose(a))
	for i := range a {
		if maxDiff(a[i], tt[i]) != 0 {
			t.Fatal("double transpose is not identity")
		}
	}
}

func TestTransposeRectangular(t *testing.T) {
	a := [][]complex128{{1, 2, 3}, {4, 5, 6}}
	tr := Transpose(a)
	if len(tr) != 3 || len(tr[0]) != 2 || tr[2][1] != 6 || tr[0][1] != 4 {
		t.Errorf("bad transpose: %v", tr)
	}
	if Transpose(nil) != nil {
		t.Error("transpose of empty should be nil")
	}
}

func TestFFT2DMatchesDFT2D(t *testing.T) {
	a := randMatrix(8, 11)
	want := DFT2D(randCopy(a))
	got, err := FFT2D(randCopy(a), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := maxDiff(got[i], want[i]); d > 1e-9 {
			t.Fatalf("row %d differs by %g", i, d)
		}
	}
}

func randCopy(a [][]complex128) [][]complex128 {
	out := make([][]complex128, len(a))
	for i := range a {
		out[i] = append([]complex128(nil), a[i]...)
	}
	return out
}

func TestDistributedTransposeCorrect(t *testing.T) {
	cfg := DistConfig{M: machine.T3D(), Style: comm.Chained, Nodes: 8}
	a := randMatrix(32, 5)
	out, rep, err := DistributedTranspose(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	want := Transpose(a)
	for i := range want {
		if maxDiff(out[i], want[i]) != 0 {
			t.Fatal("distributed transpose wrong")
		}
	}
	if rep.Messages != 7 {
		t.Errorf("messages = %d, want 7", rep.Messages)
	}
	// Each node sends 7 patches of (32/8)^2 complex = 16*16B.
	if rep.PayloadBytes != 7*16*16 {
		t.Errorf("payload = %d, want %d", rep.PayloadBytes, 7*16*16)
	}
}

func TestDistributedTransposeValidation(t *testing.T) {
	cfg := DistConfig{M: machine.T3D(), Style: comm.Chained, Nodes: 7}
	if _, _, err := DistributedTranspose(cfg, randMatrix(32, 1)); err == nil {
		t.Error("non-dividing node count should fail")
	}
	cfg.Nodes = 8
	if _, _, err := DistributedTranspose(cfg, [][]complex128{{1, 2}}); err == nil {
		t.Error("non-square matrix should fail")
	}
	if _, _, err := DistributedTranspose(cfg, nil); err == nil {
		t.Error("empty matrix should fail")
	}
}

func TestDistributed2DFFTCorrect(t *testing.T) {
	cfg := DistConfig{M: machine.T3D(), Style: comm.BufferPacking, Nodes: 8}
	a := randMatrix(16, 9)
	got, rep, err := Distributed2DFFT(cfg, a, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FFT2D(randCopy(a), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := maxDiff(got[i], want[i]); d > 1e-9 {
			t.Fatalf("row %d differs by %g", i, d)
		}
	}
	if rep.Messages == 0 || rep.ElapsedNs <= 0 {
		t.Errorf("empty comm report: %+v", rep)
	}
}

func TestChainedTransposeFasterOnT3D(t *testing.T) {
	// Table 6: chained transpose 25.2 MB/s vs buffer-packing 20.0.
	a := randMatrix(256, 13)
	packedCfg := DistConfig{M: machine.T3D(), Style: comm.BufferPacking, Nodes: 64}
	_, packed, err := DistributedTranspose(packedCfg, a)
	if err != nil {
		t.Fatal(err)
	}
	chainedCfg := DistConfig{M: machine.T3D(), Style: comm.Chained, Nodes: 64}
	_, chained, err := DistributedTranspose(chainedCfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if chained.MBps() <= packed.MBps() {
		t.Errorf("chained transpose %.1f <= packed %.1f MB/s", chained.MBps(), packed.MBps())
	}
}

func TestStridedLoadsOrientation(t *testing.T) {
	// §5.2: on the T3D the 1Qn orientation (strided stores) beats nQ1.
	a := randMatrix(256, 13)
	stores := DistConfig{M: machine.T3D(), Style: comm.Chained, Nodes: 64}
	_, sRep, err := DistributedTranspose(stores, a)
	if err != nil {
		t.Fatal(err)
	}
	loads := DistConfig{M: machine.T3D(), Style: comm.Chained, Nodes: 64, StridedLoads: true}
	_, lRep, err := DistributedTranspose(loads, a)
	if err != nil {
		t.Fatal(err)
	}
	if sRep.MBps() < lRep.MBps() {
		t.Errorf("T3D: strided-store transpose %.1f < strided-load %.1f MB/s",
			sRep.MBps(), lRep.MBps())
	}
}
