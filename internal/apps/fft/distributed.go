package fft

import (
	"fmt"

	"ctcomm/internal/apps"
	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
	"ctcomm/internal/pattern"
)

// DistConfig describes a distributed transpose/2D-FFT run.
type DistConfig struct {
	M     *machine.Machine
	Style comm.Style
	// Nodes is the partition size; it must divide the matrix dimension.
	// Zero selects all nodes of the machine.
	Nodes int
	// StridedLoads selects the nQ1 orientation of the transpose
	// (strided loads, contiguous stores); default is 1Qn (contiguous
	// loads, strided stores), the better choice on the T3D (§5.2).
	StridedLoads bool
	// BarrierNs is the per-communication-step synchronization cost.
	// Negative disables; zero selects apps.DefaultBarrierNs.
	BarrierNs float64
}

func (c *DistConfig) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = c.M.Nodes()
	}
	if c.BarrierNs == 0 {
		c.BarrierNs = apps.DefaultBarrierNs
	}
	if c.BarrierNs < 0 {
		c.BarrierNs = 0
	}
}

// DistributedTranspose transposes the n×n complex matrix a as a
// row-block-distributed array on the simulated machine: every node
// exchanges an (n/P)×(n/P) patch with every other node (personalized
// all-to-all), with the memory access pattern of paper Figure 9. It
// returns the transposed matrix and the simulated per-node
// communication report.
func DistributedTranspose(cfg DistConfig, a [][]complex128) ([][]complex128, apps.CommReport, error) {
	cfg.normalize()
	n := len(a)
	var rep apps.CommReport
	if n == 0 {
		return nil, rep, fmt.Errorf("fft: empty matrix")
	}
	if len(a[0]) != n {
		return nil, rep, fmt.Errorf("fft: matrix is not square")
	}
	p := cfg.Nodes
	if n%p != 0 {
		return nil, rep, fmt.Errorf("fft: %d nodes do not divide matrix size %d", p, n)
	}

	// The functional transpose.
	out := Transpose(a)

	// Communication cost: each node sends P-1 patches of (n/P)^2 complex
	// elements (2 words each). Element stride in the destination is one
	// matrix row of n complex = 2n words; any stride beyond the measured
	// maximum behaves like it (§4.2), and the paper writes the 1024x1024
	// transpose as 1Q1024.
	patchWords := (n / p) * (n / p) * 2
	if patchWords == 0 {
		return out, rep, nil
	}
	// Each complex element is a dense 2-word run; consecutive patch
	// elements land one destination row (2n words) apart.
	x, y := pattern.Contig(), pattern.StridedBlock(2*n, 2)
	if cfg.StridedLoads {
		x, y = pattern.StridedBlock(2*n, 2), pattern.Contig()
	}
	res, err := comm.Run(cfg.M, cfg.Style, x, y, comm.Options{
		Words:      patchWords,
		Congestion: comm.CongestionFor(cfg.M, comm.AllToAllPattern),
		Duplex:     true, // every node sends and receives
	})
	if err != nil {
		return nil, rep, err
	}
	rep.Messages = p - 1
	rep.PayloadBytes = res.PayloadBytes * int64(p-1)
	rep.ElapsedNs = res.ElapsedNs*float64(p-1) + cfg.BarrierNs
	return out, rep, nil
}

// Distributed2DFFT runs the full 2D FFT of paper §6.1.1: local row
// FFTs, distributed transpose, local "column" FFTs, and a final
// transpose back to the original orientation. The returned report
// accumulates both transposes.
func Distributed2DFFT(cfg DistConfig, a [][]complex128, inverse bool) ([][]complex128, apps.CommReport, error) {
	cfg.normalize()
	var rep apps.CommReport
	work := make([][]complex128, len(a))
	for i, row := range a {
		work[i] = append([]complex128(nil), row...)
	}
	for _, row := range work {
		if err := FFT(row, inverse); err != nil {
			return nil, rep, err
		}
	}
	t, r1, err := DistributedTranspose(cfg, work)
	if err != nil {
		return nil, rep, err
	}
	rep.Add(r1)
	for _, row := range t {
		if err := FFT(row, inverse); err != nil {
			return nil, rep, err
		}
	}
	out, r2, err := DistributedTranspose(cfg, t)
	if err != nil {
		return nil, rep, err
	}
	rep.Add(r2)
	return out, rep, nil
}
