package apps

import "math"

// Compute-time estimates for the kernels' local phases. The paper's
// premise is that the local computation runs cache-friendly ("the 1D
// FFTs can be organized to run with locality out of caches", §1) while
// the awkward memory accesses concentrate in communication; these
// estimates let the experiments report what fraction of a kernel's
// time the communication step claims on a 1995-class node.

// DefaultMFLOPS is the sustained floating-point rate assumed for a
// 1995-class node on cache-blocked kernels (the 150 MHz Alpha 21064
// peaked at 150 MFLOPS; blocked kernels sustained a third of that).
const DefaultMFLOPS = 50.0

// TimeNs converts a flop count to nanoseconds at the given sustained
// MFLOPS rate (zero selects DefaultMFLOPS).
func TimeNs(flops, mflops float64) float64 {
	if mflops <= 0 {
		mflops = DefaultMFLOPS
	}
	return flops / mflops * 1e3
}

// FlopsFFT2D returns the flop count of the two local FFT phases of an
// n x n complex 2D FFT: 2 phases x n rows x 5 n log2(n) flops per
// radix-2 complex FFT.
func FlopsFFT2D(n int) float64 {
	return 2 * float64(n) * 5 * float64(n) * log2(float64(n))
}

// FlopsSORSweep returns the flop count of one red-black SOR sweep over
// a g x g grid: about 6 flops per interior point.
func FlopsSORSweep(g int) float64 {
	interior := float64(g-2) * float64(g-2)
	return 6 * interior
}

// FlopsCGIter returns the flop count of one conjugate-gradient
// iteration: the sparse matrix-vector product (2 flops per nonzero)
// plus the vector updates and dot products (about 10 flops per row).
func FlopsCGIter(nonzeros, rows int) float64 {
	return 2*float64(nonzeros) + 10*float64(rows)
}

// CommFraction returns the share of total kernel time spent in the
// communication step.
func CommFraction(commNs, computeNs float64) float64 {
	total := commNs + computeNs
	if total <= 0 {
		return 0
	}
	return commNs / total
}

func log2(x float64) float64 { return math.Log2(x) }
