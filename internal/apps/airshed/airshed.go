// Package airshed implements the grand-challenge workload paper §6.1.1
// cites: an air-pollution (air-shed) model that "redistributes a
// 3500 x (35x5) array between one phase that performs numerical
// chemistry calculations and another phase that calculates transport
// phenomena, and this redistribution is implemented as a generic
// transpose". The chemistry phase wants all species of a grid cell on
// one node; the transport phase wants all cells of a species on one
// node; the phase boundary is therefore a corner-turn redistribution
// whose plan the HPF-style planner derives and the communication
// simulator prices.
package airshed

import (
	"fmt"
	"math"

	"ctcomm/internal/apps"
	"ctcomm/internal/comm"
	"ctcomm/internal/distrib"
	"ctcomm/internal/machine"
)

// Config describes one air-shed simulation.
type Config struct {
	M     *machine.Machine
	Style comm.Style
	// Cells is the number of grid cells (paper: 3500).
	Cells int
	// Species is the number of chemical species (paper: 35 x 5 = 175).
	Species int
	// Procs is the node count; zero selects the machine's size.
	Procs int
	// Steps is the number of chemistry/transport super-steps.
	Steps int
}

func (c *Config) normalize() error {
	if c.Cells <= 0 {
		c.Cells = 3500
	}
	if c.Species <= 0 {
		c.Species = 175
	}
	if c.Procs <= 0 {
		c.Procs = c.M.Nodes()
	}
	if c.Steps <= 0 {
		c.Steps = 1
	}
	if c.Cells < c.Procs || c.Species < 1 {
		return fmt.Errorf("airshed: %d cells cannot spread over %d nodes", c.Cells, c.Procs)
	}
	return nil
}

// State is the concentration field: State[cell][species].
type State struct {
	Cells, Species int
	C              [][]float64
}

// NewState builds a deterministic initial concentration field.
func NewState(cells, species int) *State {
	s := &State{Cells: cells, Species: species, C: make([][]float64, cells)}
	for i := range s.C {
		s.C[i] = make([]float64, species)
		for j := range s.C[i] {
			// A smooth plume plus a species-dependent baseline.
			s.C[i][j] = 1 + 0.5*math.Sin(float64(i)*0.01)*math.Cos(float64(j)*0.1)
		}
	}
	return s
}

// Total returns the total mass, which chemistry and transport conserve.
func (s *State) Total() float64 {
	sum := 0.0
	for _, row := range s.C {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Chemistry advances the reaction system in every cell: a conservative
// first-order exchange between adjacent species (a Jacobi-style
// linearized mechanism). It only needs cell-local data.
func Chemistry(s *State, dt float64) {
	for i := range s.C {
		row := s.C[i]
		prev := append([]float64(nil), row...)
		for j := range row {
			// Exchange with the neighboring species channels.
			lo, hi := j-1, j+1
			flux := 0.0
			if lo >= 0 {
				flux += prev[lo] - prev[j]
			}
			if hi < len(row) {
				flux += prev[hi] - prev[j]
			}
			row[j] = prev[j] + dt*flux/2
		}
	}
}

// Transport advects every species along the cell dimension with a
// conservative upwind step. It only needs species-local data.
func Transport(s *State, dt float64) {
	for j := 0; j < s.Species; j++ {
		first := s.C[0][j]
		var carry float64
		for i := 0; i < s.Cells; i++ {
			out := dt * s.C[i][j]
			s.C[i][j] += carry - out
			carry = out
		}
		// Periodic domain: what leaves the last cell enters the first.
		s.C[0][j] += carry
		_ = first
	}
}

// Result reports one air-shed run.
type Result struct {
	State     *State
	MassDrift float64 // relative mass change (should be ~0)
	Comm      apps.CommReport
	// PlanTransfers is the number of node pairs the corner turn moves
	// data between, and Patterns the classified pattern mix.
	PlanTransfers int
	Patterns      map[string]int
}

// Run executes Steps chemistry/transport super-steps. Each step
// performs chemistry (cell-distributed), the corner-turn
// redistribution, transport (species-distributed), and the reverse
// corner turn; both redistributions are priced on the simulated
// machine.
func Run(cfg Config) (*Result, error) {
	if cfg.M == nil {
		return nil, fmt.Errorf("airshed: missing machine")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := cfg.Cells * cfg.Species

	// Chemistry layout: element (cell, species) owned by cell block.
	// Transport layout: owned by species block. Both expressed as
	// explicit owner arrays over the row-major element index.
	chemOwner := make([]int, n)
	transOwner := make([]int, n)
	cellDist, err := distrib.NewBlock(cfg.Cells, cfg.Procs)
	if err != nil {
		return nil, err
	}
	specDist, err := distrib.NewBlock(cfg.Species, cfg.Procs)
	if err != nil {
		// Fewer species than nodes: spread cyclically instead.
		specDist, err = distrib.NewCyclic(cfg.Species, cfg.Procs)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		cell := i / cfg.Species
		spec := i % cfg.Species
		chemOwner[i] = cellDist.OwnerOf(cell)
		transOwner[i] = specDist.OwnerOf(spec)
	}
	chem, err := distrib.NewIndexed(chemOwner, cfg.Procs)
	if err != nil {
		return nil, err
	}
	trans, err := distrib.NewIndexed(transOwner, cfg.Procs)
	if err != nil {
		return nil, err
	}
	forward, err := distrib.Plan(chem, trans)
	if err != nil {
		return nil, err
	}
	backward, err := distrib.Plan(trans, chem)
	if err != nil {
		return nil, err
	}

	fwdCost, err := distrib.Execute(cfg.M, forward, distrib.ExecuteOptions{Style: cfg.Style})
	if err != nil {
		return nil, err
	}
	bwdCost, err := distrib.Execute(cfg.M, backward, distrib.ExecuteOptions{Style: cfg.Style})
	if err != nil {
		return nil, err
	}

	state := NewState(cfg.Cells, cfg.Species)
	before := state.Total()
	var rep apps.CommReport
	for step := 0; step < cfg.Steps; step++ {
		Chemistry(state, 0.1)
		rep.Add(fwdCost)
		Transport(state, 0.05)
		rep.Add(bwdCost)
	}
	after := state.Total()

	patterns := map[string]int{}
	for _, t := range forward {
		patterns[t.Src.String()+"Q"+t.Dst.String()]++
	}
	return &Result{
		State:         state,
		MassDrift:     math.Abs(after-before) / before,
		Comm:          rep,
		PlanTransfers: len(forward),
		Patterns:      patterns,
	}, nil
}
