package airshed

import (
	"math"
	"testing"

	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
)

func smallCfg(style comm.Style) Config {
	return Config{
		M:       machine.T3D(),
		Style:   style,
		Cells:   256,
		Species: 20,
		Procs:   16,
		Steps:   2,
	}
}

func TestChemistryConservesMass(t *testing.T) {
	s := NewState(64, 10)
	before := s.Total()
	for i := 0; i < 50; i++ {
		Chemistry(s, 0.1)
	}
	if d := math.Abs(s.Total()-before) / before; d > 1e-12 {
		t.Errorf("chemistry mass drift %g", d)
	}
}

func TestTransportConservesMass(t *testing.T) {
	s := NewState(64, 10)
	before := s.Total()
	for i := 0; i < 50; i++ {
		Transport(s, 0.05)
	}
	if d := math.Abs(s.Total()-before) / before; d > 1e-12 {
		t.Errorf("transport mass drift %g", d)
	}
}

func TestChemistryEquilibrates(t *testing.T) {
	// The conservative exchange drives each cell's species toward the
	// cell mean.
	s := NewState(4, 8)
	for i := 0; i < 5000; i++ {
		Chemistry(s, 0.2)
	}
	for i, row := range s.C {
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		for j, v := range row {
			if math.Abs(v-mean) > 1e-6 {
				t.Fatalf("cell %d species %d = %g, mean %g", i, j, v, mean)
			}
		}
	}
}

func TestTransportMovesPlume(t *testing.T) {
	s := &State{Cells: 8, Species: 1, C: make([][]float64, 8)}
	for i := range s.C {
		s.C[i] = []float64{0}
	}
	s.C[0][0] = 1
	Transport(s, 0.5)
	if s.C[0][0] != 0.5 || s.C[1][0] != 0.5 {
		t.Errorf("advection wrong: %v %v", s.C[0][0], s.C[1][0])
	}
}

func TestRunReportsCornerTurn(t *testing.T) {
	res, err := Run(smallCfg(comm.Chained))
	if err != nil {
		t.Fatal(err)
	}
	if res.MassDrift > 1e-12 {
		t.Errorf("mass drift %g", res.MassDrift)
	}
	if res.PlanTransfers == 0 || res.Comm.Messages == 0 {
		t.Errorf("corner turn missing: %+v", res)
	}
	// Two redistributions per step.
	if res.Comm.ElapsedNs <= 0 || res.Comm.MBps() <= 0 {
		t.Errorf("comm report empty: %+v", res.Comm)
	}
	// The corner turn is a strided workload: no transfer may classify
	// as plain contiguous on both sides.
	for pat := range res.Patterns {
		if pat == "1Q1" {
			t.Errorf("corner turn produced a fully contiguous transfer")
		}
	}
}

func TestChainedBeatsPackedForCornerTurn(t *testing.T) {
	packed, err := Run(smallCfg(comm.BufferPacking))
	if err != nil {
		t.Fatal(err)
	}
	chained, err := Run(smallCfg(comm.Chained))
	if err != nil {
		t.Fatal(err)
	}
	if chained.Comm.MBps() <= packed.Comm.MBps() {
		t.Errorf("chained corner turn %.1f <= packed %.1f MB/s",
			chained.Comm.MBps(), packed.Comm.MBps())
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallCfg(comm.Chained)
	cfg.M = nil
	if _, err := Run(cfg); err == nil {
		t.Error("missing machine should fail")
	}
	cfg = smallCfg(comm.Chained)
	cfg.Cells = 4
	cfg.Procs = 16
	if _, err := Run(cfg); err == nil {
		t.Error("fewer cells than nodes should fail")
	}
}

func TestRunDefaultsToPaperSizes(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained, Procs: 4, Steps: 1,
		Cells: 350, Species: 35} // scaled-down paper shape
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.PayloadBytes == 0 {
		t.Error("no data moved")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Cells != 3500 || cfg.Species != 175 || cfg.Procs != 64 || cfg.Steps != 1 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}
