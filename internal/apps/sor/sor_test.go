package sor

import (
	"math"
	"testing"

	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
)

func solve(t *testing.T, cfg Config, g int) *Result {
	t.Helper()
	res, err := Solve(cfg, HotPlate(g))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHotPlateBoundary(t *testing.T) {
	g := HotPlate(8)
	for j := 0; j < 8; j++ {
		if g[0][j] != 100 {
			t.Fatal("top boundary not hot")
		}
		if g[7][j] != 0 {
			t.Fatal("bottom boundary not cold")
		}
	}
}

func TestSolveConverges(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 8, Tol: 1e-5}
	res := solve(t, cfg, 32)
	if res.MaxDelta > 1e-5 {
		t.Fatalf("did not converge: delta %g after %d iters", res.MaxDelta, res.Iterations)
	}
	// Boundary rows untouched.
	for j := 0; j < 32; j++ {
		if res.Grid[0][j] != 100 || res.Grid[31][j] != 0 {
			t.Fatal("boundary modified")
		}
	}
}

func TestSolutionSatisfiesLaplace(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 4, Tol: 1e-9, MaxIter: 100000}
	res := solve(t, cfg, 16)
	// Interior points equal the average of their neighbors (discrete
	// harmonic function).
	for i := 1; i < 15; i++ {
		for j := 1; j < 15; j++ {
			avg := (res.Grid[i-1][j] + res.Grid[i+1][j] + res.Grid[i][j-1] + res.Grid[i][j+1]) / 4
			if math.Abs(res.Grid[i][j]-avg) > 1e-5 {
				t.Fatalf("not harmonic at %d,%d: %g vs %g", i, j, res.Grid[i][j], avg)
			}
		}
	}
}

func TestMaximumPrinciple(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 4, Tol: 1e-7}
	res := solve(t, cfg, 24)
	for i := range res.Grid {
		for j := range res.Grid[i] {
			v := res.Grid[i][j]
			if v < -1e-9 || v > 100+1e-9 {
				t.Fatalf("value %g at %d,%d violates the maximum principle", v, i, j)
			}
		}
	}
}

func TestSolveValidation(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.Chained}
	if _, err := Solve(cfg, HotPlate(2)); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := Solve(cfg, [][]float64{{1, 2}, {1}, {1, 2}}); err == nil {
		t.Error("ragged grid should fail")
	}
	cfg.Nodes = 1000
	if _, err := Solve(cfg, HotPlate(16)); err == nil {
		t.Error("more nodes than rows should fail")
	}
}

func TestCommReportAccumulates(t *testing.T) {
	cfg := Config{M: machine.T3D(), Style: comm.BufferPacking, Nodes: 8, Tol: 1e-4}
	res := solve(t, cfg, 32)
	if res.Comm.Messages != 2*res.Iterations {
		t.Errorf("messages = %d, want %d", res.Comm.Messages, 2*res.Iterations)
	}
	wantBytes := int64(res.Iterations) * 2 * 32 * 8
	if res.Comm.PayloadBytes != wantBytes {
		t.Errorf("payload = %d, want %d", res.Comm.PayloadBytes, wantBytes)
	}
}

func TestChainedAndPackedCloseForContiguous(t *testing.T) {
	// Table 6: SOR shows only a small chained advantage (26.2 vs 27.9
	// MB/s) because contiguous shifts need no packing to begin with.
	packed := Config{M: machine.T3D(), Style: comm.BufferPacking, Nodes: 64, Tol: 1e-4, MaxIter: 200}
	chained := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 64, Tol: 1e-4, MaxIter: 200}
	rp := solve(t, packed, 256)
	rc := solve(t, chained, 256)
	if rc.Comm.MBps() <= rp.Comm.MBps() {
		t.Errorf("chained SOR %.1f <= packed %.1f MB/s", rc.Comm.MBps(), rp.Comm.MBps())
	}
	if ratio := rc.Comm.MBps() / rp.Comm.MBps(); ratio > 2.0 {
		t.Errorf("chained/packed ratio %.2f implausibly large for contiguous shifts", ratio)
	}
}

func TestOmegaOneIsGaussSeidel(t *testing.T) {
	// omega = 1 must still converge (plain Gauss-Seidel).
	cfg := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 4, Omega: 1.0, Tol: 1e-4}
	res := solve(t, cfg, 16)
	if res.MaxDelta > 1e-4 {
		t.Errorf("Gauss-Seidel did not converge: %g", res.MaxDelta)
	}
}

func TestSORFasterThanGaussSeidel(t *testing.T) {
	gs := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 4, Omega: 1.0, Tol: 1e-5}
	sor := Config{M: machine.T3D(), Style: comm.Chained, Nodes: 4, Omega: 1.7, Tol: 1e-5}
	rGS := solve(t, gs, 32)
	rSOR := solve(t, sor, 32)
	if rSOR.Iterations >= rGS.Iterations {
		t.Errorf("SOR (%d iters) not faster than Gauss-Seidel (%d)", rSOR.Iterations, rGS.Iterations)
	}
}
