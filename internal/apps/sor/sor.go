// Package sor implements the successive over-relaxation application
// kernel of paper §6.1.3: a relaxation solver whose data is distributed
// as contiguous blocks with a replicated overlap region; after every
// relaxation step the overlap rows are exchanged with the neighbor
// nodes in a shift communication step — the contiguous 1Q1 pattern
// where chaining buys little because no packing is needed anyway.
package sor

import (
	"fmt"
	"math"

	"ctcomm/internal/apps"
	"ctcomm/internal/comm"
	"ctcomm/internal/machine"
	"ctcomm/internal/pattern"
)

// Config describes a distributed SOR run.
type Config struct {
	M     *machine.Machine
	Style comm.Style
	// Nodes is the number of row-block partitions; zero selects the
	// machine's node count.
	Nodes int
	// Omega is the relaxation factor; zero selects 1.5.
	Omega float64
	// Tol is the max-update convergence threshold; zero selects 1e-6.
	Tol float64
	// MaxIter bounds the sweeps; zero selects 10000.
	MaxIter int
	// BarrierNs is the per-step synchronization cost; zero selects
	// apps.DefaultBarrierNs, negative disables.
	BarrierNs float64
}

func (c *Config) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = c.M.Nodes()
	}
	if c.Omega == 0 {
		c.Omega = 1.5
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 10000
	}
	if c.BarrierNs == 0 {
		c.BarrierNs = apps.DefaultBarrierNs
	}
	if c.BarrierNs < 0 {
		c.BarrierNs = 0
	}
}

// Result reports a distributed SOR solve.
type Result struct {
	Grid       [][]float64
	Iterations int
	MaxDelta   float64
	Comm       apps.CommReport
}

// Solve runs SOR on the interior of grid (Dirichlet boundary in the
// outermost ring) until the largest update falls below Tol. The grid is
// row-block distributed over cfg.Nodes nodes; every sweep exchanges one
// overlap row with each vertical neighbor, and that shift communication
// is timed on the simulated machine.
func Solve(cfg Config, grid [][]float64) (*Result, error) {
	cfg.normalize()
	rows := len(grid)
	if rows < 3 {
		return nil, fmt.Errorf("sor: grid too small")
	}
	cols := len(grid[0])
	for _, r := range grid {
		if len(r) != cols {
			return nil, fmt.Errorf("sor: ragged grid")
		}
	}
	if rows/cfg.Nodes < 1 {
		return nil, fmt.Errorf("sor: %d rows cannot be split over %d nodes", rows, cfg.Nodes)
	}

	// Copy so the caller's grid is untouched.
	g := make([][]float64, rows)
	for i := range g {
		g[i] = append([]float64(nil), grid[i]...)
	}

	// Per-sweep communication: each node sends its top and bottom
	// overlap rows of cols words to its neighbors (a contiguous shift).
	exchange, err := comm.Run(cfg.M, cfg.Style, pattern.Contig(), pattern.Contig(), comm.Options{
		Words:      cols,
		Congestion: comm.CongestionFor(cfg.M, comm.ShiftPattern),
		Duplex:     true,
	})
	if err != nil {
		return nil, err
	}
	perSweepNs := 2*exchange.ElapsedNs + cfg.BarrierNs
	perSweepBytes := 2 * exchange.PayloadBytes

	var rep apps.CommReport
	var iters int
	maxDelta := math.Inf(1)
	for iters = 0; iters < cfg.MaxIter && maxDelta > cfg.Tol; iters++ {
		maxDelta = 0
		for _, color := range []int{0, 1} { // red-black ordering
			for i := 1; i < rows-1; i++ {
				start := 1 + (i+color)%2
				for j := start; j < cols-1; j += 2 {
					old := g[i][j]
					gs := (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]) / 4
					g[i][j] = old + cfg.Omega*(gs-old)
					if d := math.Abs(g[i][j] - old); d > maxDelta {
						maxDelta = d
					}
				}
			}
		}
		rep.Messages += 2
		rep.ElapsedNs += perSweepNs
		rep.PayloadBytes += perSweepBytes
	}
	return &Result{Grid: g, Iterations: iters, MaxDelta: maxDelta, Comm: rep}, nil
}

// HotPlate returns a g×g grid with a deterministic Dirichlet boundary:
// the top edge held at 100, the others at 0 — the classic hot-plate
// Laplace problem.
func HotPlate(g int) [][]float64 {
	grid := make([][]float64, g)
	for i := range grid {
		grid[i] = make([]float64, g)
	}
	for j := 0; j < g; j++ {
		grid[0][j] = 100
	}
	return grid
}
