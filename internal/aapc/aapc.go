// Package aapc implements schedules for all-to-all personalized
// communication (complete exchange), the dense traffic pattern of the
// paper's transpose workloads. Paper §4.3 asserts — citing the AAPC
// scheduling work of Hinrichs et al. [8] — that "even dense patterns
// like the complete exchange ... can be scheduled with minimal
// congestion on T3D tori of up to 1024 compute nodes"; this package
// provides two such phase schedules and the machinery to verify their
// congestion on a topology and to simulate their makespan on the
// event-level network.
package aapc

import (
	"fmt"

	"ctcomm/internal/netsim"
	"ctcomm/internal/sim"
)

// Pair is one ordered exchange of a phase.
type Pair struct {
	Src, Dst int
}

// Schedule is an ordered sequence of phases; within a phase every node
// sends at most one message and receives at most one message, so the
// phases can run back to back with a barrier between them.
//
// Schedule is the shared phase-schedule substrate: the AAPC schedules
// here and every collective planner in internal/collective build the
// same type, so congestion checking and makespan simulation live in
// one place.
type Schedule struct {
	Nodes  int
	Phases [][]Pair
	// Blocks, when non-nil, is the per-phase payload multiplier: every
	// message of phase p carries Blocks[p] base-size blocks (collective
	// planners aggregate blocks per message, e.g. recursive doubling
	// ships n/2 blocks per exchange). Nil means one block per message in
	// every phase — the classic AAPC case.
	Blocks []int64
}

// BlocksAt returns the payload multiplier of phase p (1 when Blocks is
// nil or unset for the phase).
func (s *Schedule) BlocksAt(p int) int64 {
	if p < 0 || p >= len(s.Blocks) || s.Blocks[p] <= 0 {
		return 1
	}
	return s.Blocks[p]
}

// PhaseFlows expands phase p into netsim flows, with the phase's block
// multiplier applied to bytesPerBlock.
func (s *Schedule) PhaseFlows(p int, bytesPerBlock int64) []netsim.Flow {
	bytes := bytesPerBlock * s.BlocksAt(p)
	flows := make([]netsim.Flow, 0, len(s.Phases[p]))
	for _, pr := range s.Phases[p] {
		flows = append(flows, netsim.Flow{Src: pr.Src, Dst: pr.Dst, Bytes: bytes})
	}
	return flows
}

// Shift returns the cyclic-shift (rotation) schedule: in phase k every
// node i sends its personalized block to (i+k) mod n. It works for any
// node count and needs n-1 phases.
func Shift(nodes int) (*Schedule, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("aapc: need at least 2 nodes, got %d", nodes)
	}
	s := &Schedule{Nodes: nodes}
	for k := 1; k < nodes; k++ {
		phase := make([]Pair, 0, nodes)
		for i := 0; i < nodes; i++ {
			phase = append(phase, Pair{Src: i, Dst: (i + k) % nodes})
		}
		s.Phases = append(s.Phases, phase)
	}
	return s, nil
}

// XOR returns the exclusive-or (pairwise exchange) schedule: in phase k
// node i exchanges with i XOR k. Each phase is a perfect matching, the
// classic hypercube-style AAPC schedule; nodes must be a power of two.
func XOR(nodes int) (*Schedule, error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("aapc: XOR schedule needs a power-of-two node count, got %d", nodes)
	}
	s := &Schedule{Nodes: nodes}
	for k := 1; k < nodes; k++ {
		phase := make([]Pair, 0, nodes)
		for i := 0; i < nodes; i++ {
			phase = append(phase, Pair{Src: i, Dst: i ^ k})
		}
		s.Phases = append(s.Phases, phase)
	}
	return s, nil
}

// CheckPhases checks the structural invariant every phase schedule
// must satisfy regardless of what collective it implements: no self
// exchange, all node indices in range, and within each phase every
// node sends at most once and receives at most once.
func (s *Schedule) CheckPhases() error {
	for pi, phase := range s.Phases {
		sends := make(map[int]bool)
		recvs := make(map[int]bool)
		for _, p := range phase {
			if p.Src == p.Dst {
				return fmt.Errorf("aapc: phase %d has a self exchange at node %d", pi, p.Src)
			}
			if p.Src < 0 || p.Src >= s.Nodes || p.Dst < 0 || p.Dst >= s.Nodes {
				return fmt.Errorf("aapc: phase %d has out-of-range pair %v", pi, p)
			}
			if sends[p.Src] {
				return fmt.Errorf("aapc: phase %d: node %d sends twice", pi, p.Src)
			}
			if recvs[p.Dst] {
				return fmt.Errorf("aapc: phase %d: node %d receives twice", pi, p.Dst)
			}
			sends[p.Src] = true
			recvs[p.Dst] = true
		}
	}
	return nil
}

// Validate checks that the schedule is a correct complete exchange:
// the phase invariant of CheckPhases holds, and every ordered pair
// (i, j), i != j, appears exactly once across all phases.
func (s *Schedule) Validate() error {
	if err := s.CheckPhases(); err != nil {
		return err
	}
	seen := make(map[Pair]bool)
	for _, phase := range s.Phases {
		for _, p := range phase {
			if seen[p] {
				return fmt.Errorf("aapc: pair %v scheduled twice", p)
			}
			seen[p] = true
		}
	}
	want := s.Nodes * (s.Nodes - 1)
	if len(seen) != want {
		return fmt.Errorf("aapc: %d pairs scheduled, want %d", len(seen), want)
	}
	return nil
}

// PhaseCongestion returns the congestion factor of every phase on the
// topology (including shared-port effects).
func (s *Schedule) PhaseCongestion(topo netsim.Topology, nodesPerPort int) []float64 {
	out := make([]float64, len(s.Phases))
	for i := range s.Phases {
		out[i] = netsim.CongestionOf(topo, s.PhaseFlows(i, 1), nodesPerPort)
	}
	return out
}

// MaxCongestion returns the worst phase congestion.
func (s *Schedule) MaxCongestion(topo netsim.Topology, nodesPerPort int) float64 {
	max := 0.0
	for _, c := range s.PhaseCongestion(topo, nodesPerPort) {
		if c > max {
			max = c
		}
	}
	return max
}

// Makespan simulates the schedule on the event-level network: phases
// run one after another (separated by barrierNs), and within a phase
// all exchanges proceed concurrently. bytesPerPair is the personalized
// block size (scaled per phase by the Blocks multiplier, if set).
func (s *Schedule) Makespan(net *netsim.Network, bytesPerPair int64, mode netsim.Mode, barrierNs float64) sim.Time {
	var t sim.Time
	for pi := range s.Phases {
		_, end := net.Batch(t, s.PhaseFlows(pi, bytesPerPair), mode)
		t = end + sim.Time(barrierNs)
	}
	return t
}

// UnscheduledMakespan simulates the naive alternative: every node
// injects all of its n-1 personalized messages at once.
func UnscheduledMakespan(net *netsim.Network, nodes int, bytesPerPair int64, mode netsim.Mode) sim.Time {
	_, end := net.Batch(0, netsim.AllToAll(nodes, bytesPerPair), mode)
	return end
}

// MakespanCircuit is Makespan under the blocking-wormhole (circuit)
// network model, where a message holds its whole path: the regime in
// which phase scheduling pays off in completion time, not just in
// bounded congestion.
func (s *Schedule) MakespanCircuit(net *netsim.Network, bytesPerPair int64, mode netsim.Mode, barrierNs float64) sim.Time {
	var t sim.Time
	for pi := range s.Phases {
		_, end := net.BatchCircuit(t, s.PhaseFlows(pi, bytesPerPair), mode)
		t = end + sim.Time(barrierNs)
	}
	return t
}

// UnscheduledMakespanCircuit simulates the naive all-at-once complete
// exchange under the blocking-wormhole model.
func UnscheduledMakespanCircuit(net *netsim.Network, nodes int, bytesPerPair int64, mode netsim.Mode) sim.Time {
	_, end := net.BatchCircuit(0, netsim.AllToAll(nodes, bytesPerPair), mode)
	return end
}
