// Package aapc implements schedules for all-to-all personalized
// communication (complete exchange), the dense traffic pattern of the
// paper's transpose workloads. Paper §4.3 asserts — citing the AAPC
// scheduling work of Hinrichs et al. [8] — that "even dense patterns
// like the complete exchange ... can be scheduled with minimal
// congestion on T3D tori of up to 1024 compute nodes"; this package
// provides two such phase schedules and the machinery to verify their
// congestion on a topology and to simulate their makespan on the
// event-level network.
package aapc

import (
	"fmt"

	"ctcomm/internal/netsim"
	"ctcomm/internal/sim"
)

// Pair is one ordered exchange of a phase.
type Pair struct {
	Src, Dst int
}

// Schedule is an ordered sequence of phases; within a phase every node
// sends at most one message and receives at most one message, so the
// phases can run back to back with a barrier between them.
type Schedule struct {
	Nodes  int
	Phases [][]Pair
}

// Shift returns the cyclic-shift (rotation) schedule: in phase k every
// node i sends its personalized block to (i+k) mod n. It works for any
// node count and needs n-1 phases.
func Shift(nodes int) (*Schedule, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("aapc: need at least 2 nodes, got %d", nodes)
	}
	s := &Schedule{Nodes: nodes}
	for k := 1; k < nodes; k++ {
		phase := make([]Pair, 0, nodes)
		for i := 0; i < nodes; i++ {
			phase = append(phase, Pair{Src: i, Dst: (i + k) % nodes})
		}
		s.Phases = append(s.Phases, phase)
	}
	return s, nil
}

// XOR returns the exclusive-or (pairwise exchange) schedule: in phase k
// node i exchanges with i XOR k. Each phase is a perfect matching, the
// classic hypercube-style AAPC schedule; nodes must be a power of two.
func XOR(nodes int) (*Schedule, error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("aapc: XOR schedule needs a power-of-two node count, got %d", nodes)
	}
	s := &Schedule{Nodes: nodes}
	for k := 1; k < nodes; k++ {
		phase := make([]Pair, 0, nodes)
		for i := 0; i < nodes; i++ {
			phase = append(phase, Pair{Src: i, Dst: i ^ k})
		}
		s.Phases = append(s.Phases, phase)
	}
	return s, nil
}

// Validate checks that the schedule is a correct complete exchange:
// every ordered pair (i, j), i != j, appears exactly once across all
// phases, and within each phase every node sends at most once and
// receives at most once.
func (s *Schedule) Validate() error {
	seen := make(map[Pair]bool)
	for pi, phase := range s.Phases {
		sends := make(map[int]bool)
		recvs := make(map[int]bool)
		for _, p := range phase {
			if p.Src == p.Dst {
				return fmt.Errorf("aapc: phase %d has a self exchange at node %d", pi, p.Src)
			}
			if p.Src < 0 || p.Src >= s.Nodes || p.Dst < 0 || p.Dst >= s.Nodes {
				return fmt.Errorf("aapc: phase %d has out-of-range pair %v", pi, p)
			}
			if sends[p.Src] {
				return fmt.Errorf("aapc: phase %d: node %d sends twice", pi, p.Src)
			}
			if recvs[p.Dst] {
				return fmt.Errorf("aapc: phase %d: node %d receives twice", pi, p.Dst)
			}
			sends[p.Src] = true
			recvs[p.Dst] = true
			if seen[p] {
				return fmt.Errorf("aapc: pair %v scheduled twice", p)
			}
			seen[p] = true
		}
	}
	want := s.Nodes * (s.Nodes - 1)
	if len(seen) != want {
		return fmt.Errorf("aapc: %d pairs scheduled, want %d", len(seen), want)
	}
	return nil
}

// PhaseCongestion returns the congestion factor of every phase on the
// topology (including shared-port effects).
func (s *Schedule) PhaseCongestion(topo netsim.Topology, nodesPerPort int) []float64 {
	out := make([]float64, len(s.Phases))
	for i, phase := range s.Phases {
		flows := make([]netsim.Flow, 0, len(phase))
		for _, p := range phase {
			flows = append(flows, netsim.Flow{Src: p.Src, Dst: p.Dst, Bytes: 1})
		}
		out[i] = netsim.CongestionOf(topo, flows, nodesPerPort)
	}
	return out
}

// MaxCongestion returns the worst phase congestion.
func (s *Schedule) MaxCongestion(topo netsim.Topology, nodesPerPort int) float64 {
	max := 0.0
	for _, c := range s.PhaseCongestion(topo, nodesPerPort) {
		if c > max {
			max = c
		}
	}
	return max
}

// Makespan simulates the schedule on the event-level network: phases
// run one after another (separated by barrierNs), and within a phase
// all exchanges proceed concurrently. bytesPerPair is the personalized
// block size.
func (s *Schedule) Makespan(net *netsim.Network, bytesPerPair int64, mode netsim.Mode, barrierNs float64) sim.Time {
	var t sim.Time
	for _, phase := range s.Phases {
		flows := make([]netsim.Flow, 0, len(phase))
		for _, p := range phase {
			flows = append(flows, netsim.Flow{Src: p.Src, Dst: p.Dst, Bytes: bytesPerPair})
		}
		_, end := net.Batch(t, flows, mode)
		t = end + sim.Time(barrierNs)
	}
	return t
}

// UnscheduledMakespan simulates the naive alternative: every node
// injects all of its n-1 personalized messages at once.
func UnscheduledMakespan(net *netsim.Network, nodes int, bytesPerPair int64, mode netsim.Mode) sim.Time {
	_, end := net.Batch(0, netsim.AllToAll(nodes, bytesPerPair), mode)
	return end
}

// MakespanCircuit is Makespan under the blocking-wormhole (circuit)
// network model, where a message holds its whole path: the regime in
// which phase scheduling pays off in completion time, not just in
// bounded congestion.
func (s *Schedule) MakespanCircuit(net *netsim.Network, bytesPerPair int64, mode netsim.Mode, barrierNs float64) sim.Time {
	var t sim.Time
	for _, phase := range s.Phases {
		flows := make([]netsim.Flow, 0, len(phase))
		for _, p := range phase {
			flows = append(flows, netsim.Flow{Src: p.Src, Dst: p.Dst, Bytes: bytesPerPair})
		}
		_, end := net.BatchCircuit(t, flows, mode)
		t = end + sim.Time(barrierNs)
	}
	return t
}

// UnscheduledMakespanCircuit simulates the naive all-at-once complete
// exchange under the blocking-wormhole model.
func UnscheduledMakespanCircuit(net *netsim.Network, nodes int, bytesPerPair int64, mode netsim.Mode) sim.Time {
	_, end := net.BatchCircuit(0, netsim.AllToAll(nodes, bytesPerPair), mode)
	return end
}
