package aapc

import (
	"testing"
	"testing/quick"

	"ctcomm/internal/machine"
	"ctcomm/internal/netsim"
)

func TestShiftScheduleValid(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 64} {
		s, err := Shift(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Shift(%d): %v", n, err)
		}
		if len(s.Phases) != n-1 {
			t.Errorf("Shift(%d): %d phases, want %d", n, len(s.Phases), n-1)
		}
	}
}

func TestXORScheduleValid(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64} {
		s, err := XOR(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("XOR(%d): %v", n, err)
		}
	}
}

func TestXORRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12} {
		if _, err := XOR(n); err == nil {
			t.Errorf("XOR(%d) should fail", n)
		}
	}
	if _, err := Shift(1); err == nil {
		t.Error("Shift(1) should fail")
	}
}

func TestXORPhasesArePairwiseExchanges(t *testing.T) {
	s, _ := XOR(16)
	for pi, phase := range s.Phases {
		seen := map[Pair]bool{}
		for _, p := range phase {
			seen[p] = true
		}
		for _, p := range phase {
			if !seen[Pair{Src: p.Dst, Dst: p.Src}] {
				t.Fatalf("phase %d: %v has no reverse partner", pi, p)
			}
		}
	}
}

func TestValidateCatchesBrokenSchedules(t *testing.T) {
	s := &Schedule{Nodes: 2, Phases: [][]Pair{{{Src: 0, Dst: 0}}}}
	if s.Validate() == nil {
		t.Error("self exchange should fail")
	}
	s = &Schedule{Nodes: 2, Phases: [][]Pair{{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}}}
	if s.Validate() == nil {
		t.Error("double send should fail")
	}
	s = &Schedule{Nodes: 2, Phases: [][]Pair{{{Src: 0, Dst: 1}}}}
	if s.Validate() == nil {
		t.Error("incomplete exchange should fail")
	}
	s = &Schedule{Nodes: 2, Phases: [][]Pair{{{Src: 0, Dst: 5}}}}
	if s.Validate() == nil {
		t.Error("out-of-range pair should fail")
	}
}

// The paper's claim (§4.3): the scheduled complete exchange runs at
// minimal congestion — on the T3D the shared network ports make that
// minimum two.
func TestScheduledCongestionIsMinimalOnT3D(t *testing.T) {
	m := machine.T3D() // 4x4x4 torus, 2 nodes per port
	s, err := XOR(m.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	max := s.MaxCongestion(m.Topo, m.Net.NodesPerPort)
	if max > 4 {
		t.Errorf("XOR schedule congestion %v, want <= 4 (near the port minimum of 2)", max)
	}
	// Unscheduled all-at-once traffic congests far more.
	naive := netsim.CongestionOf(m.Topo, netsim.AllToAll(m.Nodes(), 1), m.Net.NodesPerPort)
	if naive < 4*max {
		t.Errorf("naive congestion %v not >> scheduled %v", naive, max)
	}
}

func TestShiftCongestionSmallPhases(t *testing.T) {
	m := machine.Paragon() // 8x8 mesh, private ports
	s, err := Shift(m.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cs := s.PhaseCongestion(m.Topo, m.Net.NodesPerPort)
	// Neighbor phases are congestion-1; distant phases grow on a mesh
	// but stay far below the naive all-at-once level.
	if cs[0] != 1 {
		t.Errorf("shift-by-1 congestion = %v, want 1", cs[0])
	}
	naive := netsim.CongestionOf(m.Topo, netsim.AllToAll(m.Nodes(), 1), 1)
	for k, c := range cs {
		if c >= naive {
			t.Errorf("phase %d congestion %v not below naive %v", k+1, c, naive)
		}
	}
}

func TestMakespanScheduledVsNaive(t *testing.T) {
	m := machine.T3D()
	s, err := XOR(m.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	const bytesPerPair = 4096
	netScheduled := netsim.MustNewNetwork(m.Topo, m.Net)
	scheduled := s.Makespan(netScheduled, bytesPerPair, netsim.DataOnly, 0)
	netNaive := netsim.MustNewNetwork(m.Topo, m.Net)
	naive := UnscheduledMakespan(netNaive, m.Nodes(), bytesPerPair, netsim.DataOnly)
	if scheduled <= 0 || naive <= 0 {
		t.Fatal("zero makespan")
	}
	// In a throughput-oriented, fairly multiplexed network the naive
	// free-for-all wastes no time (paper §4.3: "it is irrelevant whether
	// the data are multiplexed at a per flit or a per message level"),
	// so phasing cannot beat it; its value is bounding the instantaneous
	// link congestion, which the congestion tests above assert. Phasing
	// costs straggler idle time per phase; require it stays bounded.
	ratio := float64(scheduled) / float64(naive)
	if ratio < 1.0 {
		t.Errorf("scheduled makespan %.0f beat the naive lower bound %.0f",
			float64(scheduled), float64(naive))
	}
	if ratio > 3.0 {
		t.Errorf("phasing overhead too large: scheduled %.0f vs naive %.0f (ratio %.2f)",
			float64(scheduled), float64(naive), ratio)
	}
}

func TestMakespanBarrierAccumulates(t *testing.T) {
	m := machine.T3D()
	s, _ := XOR(4)
	net1 := netsim.MustNewNetwork(m.Topo, m.Net)
	without := s.Makespan(net1, 1024, netsim.DataOnly, 0)
	net2 := netsim.MustNewNetwork(m.Topo, m.Net)
	with := s.Makespan(net2, 1024, netsim.DataOnly, 1000)
	wantExtra := float64(len(s.Phases)) * 1000
	if got := float64(with - without); got < wantExtra*0.99 || got > wantExtra*1.01 {
		t.Errorf("barrier time accounted %.0f, want %.0f", got, wantExtra)
	}
}

// Property: both schedules are valid complete exchanges for arbitrary
// supported sizes.
func TestSchedulePropertyValid(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw)%30 + 2
		s, err := Shift(n)
		if err != nil || s.Validate() != nil {
			return false
		}
		// Power-of-two subset for XOR.
		pow := 2
		for pow*2 <= n {
			pow *= 2
		}
		x, err := XOR(pow)
		return err == nil && x.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCircuitModeSchedulingWins(t *testing.T) {
	// Under blocking wormhole routing the phased schedule beats the
	// naive free-for-all in makespan, not just in congestion: worms
	// that share any link serialize completely, and the naive pattern
	// is full of such collisions.
	m := machine.T3D()
	s, err := XOR(m.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	const bytesPerPair = 8192
	netSched := netsim.MustNewNetwork(m.Topo, m.Net)
	scheduled := s.MakespanCircuit(netSched, bytesPerPair, netsim.DataOnly, 0)
	netNaive := netsim.MustNewNetwork(m.Topo, m.Net)
	naive := UnscheduledMakespanCircuit(netNaive, m.Nodes(), bytesPerPair, netsim.DataOnly)
	if scheduled >= naive {
		t.Errorf("circuit mode: scheduled %v should beat naive %v", scheduled, naive)
	}
}
