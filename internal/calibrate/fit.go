package calibrate

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"ctcomm/internal/machine"
	"ctcomm/internal/netsim"
)

// This file fits machine-profile constants from measurements instead of
// hard-coding 1995 datasheet values. González-Domínguez et al. (PAPERS.md)
// show that the per-tier startup+bandwidth constants of a hierarchical
// communication model can be recovered from measured (size, rate) rows by
// least squares with ~1.5% error; the same closed form applies here.
//
// The model is the classic postal form: a transfer of s bytes takes
//
//	T(s) = t0 + s/B        (t0 startup, B asymptotic payload bandwidth)
//
// so measured rates r_i = s_i/T_i convert to times T_i = 1e3·s_i/r_i ns
// (s in bytes, r in MB/s = bytes/us), and (t0, 1/B) drop out of an
// ordinary linear regression of T on s. B is then inverted through the
// framing/congestion/copy arithmetic of netsim.Config.RateAt to the
// tier's LinkMBps, holding the tier's other constants (copy cost,
// congestion floor, packet framing) at the base profile's values.
//
// The measurement convention is the uncongested streaming benchmark:
// rates are payload MB/s for data-only (Nd) framed transfers at the
// tier's natural congestion floor — exactly what Synthesize generates
// and what a ping-pong/streaming microbenchmark measures.

// MeasuredRow is one calibration measurement: a transfer size and the
// achieved payload rate, optionally tagged with the hierarchy tier the
// endpoints spanned. Flat machines leave Level empty; hierarchical
// machines must tag every row.
type MeasuredRow struct {
	SizeBytes float64 `json:"size_bytes"`
	RateMBps  float64 `json:"rate_MBps"`
	Level     string  `json:"level,omitempty"`
}

// ParseRows decodes measurement rows from JSON (an array of rows or an
// object with a "rows" array) or CSV (columns size_bytes, rate_MBps and
// optionally level, with or without a header line).
func ParseRows(data []byte) ([]MeasuredRow, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, fmt.Errorf("calibrate: no measurement rows")
	}
	switch trimmed[0] {
	case '[':
		var rows []MeasuredRow
		if err := json.Unmarshal([]byte(trimmed), &rows); err != nil {
			return nil, fmt.Errorf("calibrate: parsing measurement JSON: %w", err)
		}
		return rows, nil
	case '{':
		var doc struct {
			Rows []MeasuredRow `json:"rows"`
		}
		if err := json.Unmarshal([]byte(trimmed), &doc); err != nil {
			return nil, fmt.Errorf("calibrate: parsing measurement JSON: %w", err)
		}
		return doc.Rows, nil
	}
	return parseCSVRows(trimmed)
}

func parseCSVRows(text string) ([]MeasuredRow, error) {
	r := csv.NewReader(strings.NewReader(text))
	r.FieldsPerRecord = -1 // level column is optional
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("calibrate: parsing measurement CSV: %w", err)
	}
	var rows []MeasuredRow
	for i, rec := range records {
		if len(rec) < 2 {
			return nil, fmt.Errorf("calibrate: CSV line %d: want size_bytes,rate_MBps[,level]", i+1)
		}
		size, err1 := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		rate, err2 := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err1 != nil || err2 != nil {
			if i == 0 {
				continue // header line
			}
			return nil, fmt.Errorf("calibrate: CSV line %d: non-numeric size or rate", i+1)
		}
		row := MeasuredRow{SizeBytes: size, RateMBps: rate}
		if len(rec) >= 3 {
			row.Level = strings.TrimSpace(rec[2])
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("calibrate: no measurement rows in CSV")
	}
	return rows, nil
}

// FitPoint is one measurement with the fitted model's prediction.
type FitPoint struct {
	SizeBytes    float64 `json:"size_bytes"`
	MeasuredMBps float64 `json:"measured_MBps"`
	ModelMBps    float64 `json:"model_MBps"`
	ErrPct       float64 `json:"err_pct"`
}

// LevelFit is the fitted constant pair of one hierarchy tier (or of the
// whole machine, for flat profiles: Level is then empty).
type LevelFit struct {
	Level string `json:"level,omitempty"`
	// StartupNs and RateMBps are the fitted postal constants t0 and B.
	StartupNs float64 `json:"startup_ns"`
	RateMBps  float64 `json:"rate_MBps"`
	// LinkMBps is B inverted through the framing/congestion/copy
	// arithmetic — the constant actually written into the profile.
	LinkMBps  float64    `json:"link_MBps"`
	MaxErrPct float64    `json:"max_err_pct"`
	Points    []FitPoint `json:"points"`
}

// FitResult is a completed calibration fit: per-tier constants with
// per-point errors, plus the emitted profile ready to save and load.
type FitResult struct {
	Base    *machine.Machine
	Machine *machine.Machine
	Levels  []LevelFit
}

// round9 rounds to 9 significant digits. Fitted constants carry ~1e-12
// relative regression noise; snapping to 9 digits recovers round-number
// profile constants exactly while staying far below measurement error.
func round9(x float64) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	exp := math.Ceil(math.Log10(math.Abs(x)))
	scale := math.Pow(10, 9-exp)
	return math.Round(x*scale) / scale
}

// lsqFit regresses T = t0 + beta·s over the rows' (size, time) points.
// The regression is weighted by 1/T² — i.e. it minimizes RELATIVE time
// error — because calibration sweeps span three orders of magnitude in
// size: unweighted absolute-error lsq would let the multi-megabyte
// points (whose times are ~1000x larger) completely swamp the startup
// intercept, turning 1% rate noise into wildly wrong t0. Means are
// subtracted before forming the normal equations so exact collinear
// input recovers the constants to ~1 ulp.
func lsqFit(rows []MeasuredRow) (t0, beta float64, err error) {
	var sumW, sumWS, sumWT float64
	distinct := map[float64]bool{}
	for _, r := range rows {
		if r.SizeBytes <= 0 || r.RateMBps <= 0 {
			return 0, 0, fmt.Errorf("calibrate: rows need positive size_bytes and rate_MBps, got (%g, %g)",
				r.SizeBytes, r.RateMBps)
		}
		t := 1e3 * r.SizeBytes / r.RateMBps // ns
		w := 1 / (t * t)
		sumW += w
		sumWS += w * r.SizeBytes
		sumWT += w * t
		distinct[r.SizeBytes] = true
	}
	if len(distinct) < 2 {
		return 0, 0, fmt.Errorf("calibrate: need measurements at >= 2 distinct sizes, got %d", len(distinct))
	}
	meanS, meanT := sumWS/sumW, sumWT/sumW
	var cov, varS float64
	for _, r := range rows {
		t := 1e3 * r.SizeBytes / r.RateMBps
		w := 1 / (t * t)
		ds, dt := r.SizeBytes-meanS, t-meanT
		cov += w * ds * dt
		varS += w * ds * ds
	}
	beta = cov / varS
	t0 = meanT - beta*meanS
	if beta <= 0 {
		return 0, 0, fmt.Errorf("calibrate: fitted bandwidth is not positive (rates grow with size too fast; check the rows)")
	}
	if t0 < 0 {
		t0 = 0 // mild measurement noise can pull the intercept negative
	}
	return round9(t0), beta, nil
}

// Fit least-squares fits per-tier startup+bandwidth constants from
// measured rows and emits a profile cloned from base with those
// constants in place. Flat bases take untagged rows and fit
// (LibOverheadNs, Net.LinkMBps); hierarchical bases require every row
// tagged with its tier and fit (StartupNs, LinkMBps) per tier that has
// rows — tiers without measurements keep the base constants. name, when
// non-empty, renames the emitted profile (the default keeps the base
// name, so fitted answers diff cleanly against built-in ones).
func Fit(base *machine.Machine, rows []MeasuredRow, name string) (*FitResult, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("calibrate: no measurement rows")
	}
	hier := base.Net.Hier

	// Group rows by tier, validating tags against the base's shape.
	groups := map[netsim.Level][]MeasuredRow{}
	var flatRows []MeasuredRow
	for _, r := range rows {
		if hier == nil {
			if r.Level != "" {
				return nil, fmt.Errorf("calibrate: base profile %q is flat but row (%g B) is tagged level %q",
					base.Name, r.SizeBytes, r.Level)
			}
			flatRows = append(flatRows, r)
			continue
		}
		if r.Level == "" {
			return nil, fmt.Errorf("calibrate: base profile %q is hierarchical; every row needs a level tag", base.Name)
		}
		l, err := netsim.ParseLevel(r.Level)
		if err != nil {
			return nil, fmt.Errorf("calibrate: %w", err)
		}
		groups[l] = append(groups[l], r)
	}

	fitted := base.Clone()
	if name != "" {
		fitted.Name = name
	}
	var levels []LevelFit

	fitGroup := func(level netsim.Level, tag string, rows []MeasuredRow) (LevelFit, float64, float64, error) {
		t0, beta, err := lsqFit(rows)
		if err != nil {
			if tag != "" {
				err = fmt.Errorf("%w (level %s)", err, tag)
			}
			return LevelFit{}, 0, 0, err
		}
		rate := round9(1e3 / beta)
		// Invert from the UNROUNDED rate: the copy-cost subtraction in the
		// inverse amplifies relative error, so rounding first would keep
		// round-number link constants from snapping back exactly.
		link, err := fitted.Net.LinkForRate(level, netsim.DataOnly, 1e3/beta)
		if err != nil {
			return LevelFit{}, 0, 0, fmt.Errorf("calibrate: %w", err)
		}
		link = round9(link)
		lf := LevelFit{Level: tag, StartupNs: t0, RateMBps: rate, LinkMBps: link}
		betaFit := 1e3 / rate
		for _, r := range rows {
			model := 1e3 * r.SizeBytes / (t0 + betaFit*r.SizeBytes)
			errPct := math.Abs(model-r.RateMBps) / r.RateMBps * 100
			lf.Points = append(lf.Points, FitPoint{
				SizeBytes: r.SizeBytes, MeasuredMBps: r.RateMBps,
				ModelMBps: round9(model), ErrPct: round9(errPct),
			})
			if errPct > lf.MaxErrPct {
				lf.MaxErrPct = round9(errPct)
			}
		}
		sort.Slice(lf.Points, func(i, j int) bool { return lf.Points[i].SizeBytes < lf.Points[j].SizeBytes })
		return lf, t0, link, nil
	}

	if hier == nil {
		lf, t0, link, err := fitGroup(netsim.InterNode, "", flatRows)
		if err != nil {
			return nil, err
		}
		fitted.Net.LinkMBps = link
		fitted.LibOverheadNs = t0
		if fitted.PVMOverheadNs < t0 {
			fitted.PVMOverheadNs = t0 // keep the overhead ordering invariant
		}
		levels = append(levels, lf)
	} else {
		for _, l := range netsim.Levels() {
			rs, ok := groups[l]
			if !ok {
				continue
			}
			lf, t0, link, err := fitGroup(l, l.String(), rs)
			if err != nil {
				return nil, err
			}
			lc := fitted.Net.Hier.Level(l)
			lc.StartupNs = t0
			lc.LinkMBps = link
			fitted.Net.Hier.SetLevel(l, lc)
			if l == netsim.InterNode {
				// Profiles keep the flat rate mirroring the inter-node tier
				// so flat-only code paths stay coherent.
				fitted.Net.LinkMBps = link
			}
			levels = append(levels, lf)
		}
	}

	if err := fitted.Validate(); err != nil {
		return nil, fmt.Errorf("calibrate: fitted profile is invalid: %w", err)
	}
	return &FitResult{Base: base, Machine: fitted, Levels: levels}, nil
}

// DefaultFitSizes are the transfer sizes Synthesize samples: a
// log-spaced ramp from small (startup-dominated) to large
// (bandwidth-dominated), the spread a real calibration sweep needs for
// the intercept and slope to both be well conditioned.
var DefaultFitSizes = []float64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}

// Synthesize generates the measurement rows a perfect calibration run
// on m would produce at the given sizes (DefaultFitSizes when nil):
// data-only payload rates at each tier's congestion floor, with the
// tier's startup folded in. Fit on these rows recovers m's constants
// exactly (round-trip golden tests rely on it).
func Synthesize(m *machine.Machine, sizes []float64) []MeasuredRow {
	if len(sizes) == 0 {
		sizes = DefaultFitSizes
	}
	var rows []MeasuredRow
	emit := func(level netsim.Level, tag string, t0 float64) {
		rate := m.Net.RateAt(level, netsim.DataOnly, 1) // clamps to the tier floor
		beta := 1e3 / rate
		for _, s := range sizes {
			rows = append(rows, MeasuredRow{
				SizeBytes: s,
				RateMBps:  1e3 * s / (t0 + beta*s),
				Level:     tag,
			})
		}
	}
	if m.Net.Hier == nil {
		emit(netsim.InterNode, "", m.LibOverheadNs)
		return rows
	}
	for _, l := range netsim.Levels() {
		emit(l, l.String(), m.Net.Hier.Level(l).StartupNs)
	}
	return rows
}
