// Package calibrate measures the throughput of every basic transfer on a
// simulated machine, reproducing the methodology of paper §4 ("Measuring
// throughput figures for basic transfers"): large-block transfers, rates
// based on payload words only, index loads and addresses counted as
// overhead. Its output parameterizes the copy-transfer model exactly as
// the paper's live measurements parameterized theirs.
package calibrate

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ctcomm/internal/machine"
	"ctcomm/internal/pattern"
	"ctcomm/internal/sim"
	"ctcomm/internal/xfer"
)

// DefaultWords is the block size used for calibration runs: 2^17 words
// (1 MB), comfortably beyond every cache.
const DefaultWords = 1 << 17

// Table holds measured basic-transfer rates in MB/s, keyed by the
// paper's notation ("1C64", "wS0", "0D1", ...).
type Table struct {
	Machine string
	Rates   map[string]float64
}

// Key renders the canonical key for a basic transfer: read pattern,
// operation letter, write pattern, e.g. "64C1".
func Key(read pattern.Spec, op byte, write pattern.Spec) string {
	return fmt.Sprintf("%s%c%s", read, op, write)
}

// Get returns the rate for a key and whether it was measured.
func (t *Table) Get(key string) (float64, bool) {
	r, ok := t.Rates[key]
	return r, ok
}

// Keys returns the measured keys in sorted order.
func (t *Table) Keys() []string {
	ks := make([]string, 0, len(t.Rates))
	for k := range t.Rates {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// memPatterns are the pattern classes of Table 1: contiguous, the
// canonical large stride 64, indexed, and the paper's block-strided
// variant (2-word runs, e.g. complex numbers; §2.2).
var memPatterns = []pattern.Spec{
	pattern.Contig(),
	pattern.Strided(64),
	pattern.StridedBlock(64, 2),
	pattern.Indexed(),
}

// Calibration memoization. Rate tables are pure functions of the machine
// profile and the block size, and the experiment suite measures the same
// few machines over and over, so tables are cached process-wide. The
// cache stores only immutable result tables and the simulator-work
// attribution of the one real measurement — never simulators — keeping
// the "no shared engines" concurrency invariant intact.
//
// Attribution: the real measurement runs on a private clone of the
// machine observing a private sim.Stats, and EVERY Measure call (hit or
// miss) replays the recorded (accesses, simulated ns) into the caller's
// Stats. Per-experiment attribution is therefore identical regardless of
// which experiment happens to measure first, which keeps serial and
// parallel runs byte-identical.
type cacheEntry struct {
	once     sync.Once
	table    *Table
	accesses int64
	simNs    int64
}

var (
	cacheMu     sync.Mutex
	cache       = map[string]*cacheEntry{}
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
)

// CacheStats reports process-wide calibration cache hits and misses.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// fingerprint keys the cache by everything a rate table depends on. The
// Stats pointer is attribution plumbing, not configuration, and is
// excluded.
func fingerprint(m *machine.Machine, words int) string {
	mem := m.Mem
	mem.Stats = nil
	return fmt.Sprintf("%d|%+v|%+v|%+v|%+v", words, mem, m.NI, m.Deposit, m.Fetch)
}

// Measure returns the basic-transfer rate table for machine m at the
// given block size, measuring it at most once per process (see the
// memoization notes above). The returned table is the caller's to
// mutate.
func Measure(m *machine.Machine, words int) *Table {
	if words <= 0 {
		words = DefaultWords
	}
	key := fingerprint(m, words)
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		cacheMisses.Add(1)
		var st sim.Stats
		clone := *m
		clone.Observe(&st)
		e.table = measureUncached(&clone, words)
		e.accesses = st.Accesses()
		e.simNs = int64(st.SimTime())
	})
	if hit {
		cacheHits.Add(1)
	}
	// Replay the measurement's simulator work into the caller's stats.
	m.Mem.Stats.RecordAccesses(e.accesses, float64(e.simNs))

	out := &Table{Machine: e.table.Machine, Rates: make(map[string]float64, len(e.table.Rates))}
	for k, v := range e.table.Rates {
		out.Rates[k] = v
	}
	return out
}

// measureUncached runs every basic transfer the machine supports with
// the pattern set of the paper's tables and returns the rate table. Each
// measurement uses a fresh (cold) node, as the paper's microbenchmarks
// operate far beyond cache capacity.
func measureUncached(m *machine.Machine, words int) *Table {
	t := &Table{Machine: m.Name, Rates: make(map[string]float64)}

	// Local copies xCy for all pattern combinations (Table 1 and Fig 4).
	for _, r := range memPatterns {
		for _, w := range memPatterns {
			n := m.NewNode(0)
			res, err := xfer.Copy(n, r, w, words)
			if err == nil {
				t.Rates[Key(r, 'C', w)] = res.MBps()
			}
		}
	}

	// Send transfers xS0 and xF0 (Table 2).
	for _, r := range memPatterns {
		n := m.NewNode(0)
		if res, err := xfer.LoadSend(n, r, words); err == nil {
			t.Rates[Key(r, 'S', pattern.Fixed())] = res.MBps()
		}
		n = m.NewNode(0)
		if res, err := xfer.FetchSend(n, r, words); err == nil {
			t.Rates[Key(r, 'F', pattern.Fixed())] = res.MBps()
		}
	}

	// Receive transfers 0Ry and 0Dy (Table 3).
	for _, w := range memPatterns {
		n := m.NewNode(0)
		if res, err := xfer.RecvStore(n, w, words); err == nil {
			t.Rates[Key(pattern.Fixed(), 'R', w)] = res.MBps()
		}
		n = m.NewNode(0)
		if res, err := xfer.RecvDeposit(n, w, words); err == nil {
			t.Rates[Key(pattern.Fixed(), 'D', w)] = res.MBps()
		}
	}
	return t
}

// StrideSweep measures the local copy rate with one side strided at each
// given stride and the other contiguous, for both directions
// (reproduces Figure 4). Results are keyed load-side first:
// sweep[stride] = {LoadStrided, StoreStrided} in MB/s.
type SweepPoint struct {
	Stride      int
	LoadStrided float64 // sCy with strided loads, contiguous stores
	StoreStride float64 // 1Cs with contiguous loads, strided stores
}

// StrideSweep runs the Figure 4 experiment on machine m.
func StrideSweep(m *machine.Machine, strides []int, words int) []SweepPoint {
	if words <= 0 {
		words = DefaultWords
	}
	out := make([]SweepPoint, 0, len(strides))
	for _, s := range strides {
		sp := SweepPoint{Stride: s}
		n := m.NewNode(0)
		if res, err := xfer.Copy(n, pattern.Strided(s), pattern.Contig(), words); err == nil {
			sp.LoadStrided = res.MBps()
		}
		n = m.NewNode(0)
		if res, err := xfer.Copy(n, pattern.Contig(), pattern.Strided(s), words); err == nil {
			sp.StoreStride = res.MBps()
		}
		out = append(out, sp)
	}
	return out
}
