package calibrate

import (
	"math"
	"strings"
	"testing"

	"ctcomm/internal/machine"
	"ctcomm/internal/netsim"
)

// TestFitRecoversFlatProfile round-trips the T3D: synthetic
// measurements generated from the profile must fit back to its exact
// constants with (essentially) zero per-point error.
func TestFitRecoversFlatProfile(t *testing.T) {
	base := machine.T3D()
	rows := Synthesize(base, nil)
	res, err := Fit(base, rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Machine.Net.LinkMBps; got != base.Net.LinkMBps {
		t.Errorf("LinkMBps: fitted %v, want %v", got, base.Net.LinkMBps)
	}
	if got := res.Machine.LibOverheadNs; got != base.LibOverheadNs {
		t.Errorf("LibOverheadNs: fitted %v, want %v", got, base.LibOverheadNs)
	}
	if len(res.Levels) != 1 || res.Levels[0].Level != "" {
		t.Fatalf("flat fit should report one untagged level, got %+v", res.Levels)
	}
	for _, p := range res.Levels[0].Points {
		if p.ErrPct > 2 {
			t.Errorf("point %g B: err %g%% exceeds 2%%", p.SizeBytes, p.ErrPct)
		}
	}
	if res.Machine.Name != base.Name {
		t.Errorf("default fit name %q should keep base name %q", res.Machine.Name, base.Name)
	}
}

// TestFitRecoversHierarchicalProfiles round-trips both modern profiles
// tier by tier.
func TestFitRecoversHierarchicalProfiles(t *testing.T) {
	for _, base := range []*machine.Machine{machine.MulticoreCluster(), machine.CrayXE6()} {
		rows := Synthesize(base, nil)
		res, err := Fit(base, rows, "")
		if err != nil {
			t.Fatalf("%s: %v", base.Name, err)
		}
		if len(res.Levels) != 3 {
			t.Fatalf("%s: want 3 fitted levels, got %d", base.Name, len(res.Levels))
		}
		for _, l := range netsim.Levels() {
			want := base.Net.Hier.Level(l)
			got := res.Machine.Net.Hier.Level(l)
			if got.LinkMBps != want.LinkMBps {
				t.Errorf("%s %s: LinkMBps fitted %v, want %v", base.Name, l, got.LinkMBps, want.LinkMBps)
			}
			if got.StartupNs != want.StartupNs {
				t.Errorf("%s %s: StartupNs fitted %v, want %v", base.Name, l, got.StartupNs, want.StartupNs)
			}
		}
		if res.Machine.Net.LinkMBps != base.Net.LinkMBps {
			t.Errorf("%s: flat LinkMBps should mirror the inter-node tier", base.Name)
		}
		for _, lf := range res.Levels {
			if lf.MaxErrPct > 2 {
				t.Errorf("%s %s: max err %g%% exceeds 2%%", base.Name, lf.Level, lf.MaxErrPct)
			}
		}
	}
}

// TestFitNoisyRows checks the fit degrades gracefully on noisy input:
// constants land near truth and the error report is honest.
func TestFitNoisyRows(t *testing.T) {
	base := machine.T3D()
	rows := Synthesize(base, nil)
	// Deterministic +/-1% alternating "noise".
	for i := range rows {
		if i%2 == 0 {
			rows[i].RateMBps *= 1.01
		} else {
			rows[i].RateMBps *= 0.99
		}
	}
	res, err := Fit(base, rows, "noisy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Name != "noisy" {
		t.Errorf("name override not applied: %q", res.Machine.Name)
	}
	if rel := math.Abs(res.Machine.Net.LinkMBps-base.Net.LinkMBps) / base.Net.LinkMBps; rel > 0.05 {
		t.Errorf("noisy fit link %v too far from %v", res.Machine.Net.LinkMBps, base.Net.LinkMBps)
	}
	if res.Levels[0].MaxErrPct <= 0 || res.Levels[0].MaxErrPct > 5 {
		t.Errorf("noisy fit should report a small nonzero max err, got %g%%", res.Levels[0].MaxErrPct)
	}
}

func TestFitInputValidation(t *testing.T) {
	flat := machine.T3D()
	hier := machine.CrayXE6()
	cases := []struct {
		name string
		base *machine.Machine
		rows []MeasuredRow
		want string
	}{
		{"no rows", flat, nil, "no measurement rows"},
		{"one size", flat, []MeasuredRow{{SizeBytes: 1024, RateMBps: 100}, {SizeBytes: 1024, RateMBps: 101}}, "2 distinct sizes"},
		{"negative rate", flat, []MeasuredRow{{SizeBytes: 1024, RateMBps: -1}, {SizeBytes: 2048, RateMBps: 100}}, "positive"},
		{"tag on flat", flat, []MeasuredRow{{SizeBytes: 1024, RateMBps: 90, Level: "inter-node"}, {SizeBytes: 2048, RateMBps: 100}}, "flat"},
		{"untagged on hier", hier, []MeasuredRow{{SizeBytes: 1024, RateMBps: 90}, {SizeBytes: 2048, RateMBps: 100}}, "level tag"},
		{"bad tag", hier, []MeasuredRow{{SizeBytes: 1024, RateMBps: 90, Level: "rack"}, {SizeBytes: 2048, RateMBps: 100, Level: "rack"}}, "unknown hierarchy level"},
	}
	for _, c := range cases {
		_, err := Fit(c.base, c.rows, "")
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}
}

func TestParseRowsFormats(t *testing.T) {
	jsonArr := `[{"size_bytes":1024,"rate_MBps":80.5},{"size_bytes":65536,"rate_MBps":140,"level":"inter-node"}]`
	jsonObj := `{"rows":[{"size_bytes":1024,"rate_MBps":80.5}]}`
	csvHdr := "size_bytes,rate_MBps,level\n1024,80.5,inter-node\n65536,140,\n"
	csvBare := "1024,80.5\n65536,140"

	rows, err := ParseRows([]byte(jsonArr))
	if err != nil || len(rows) != 2 || rows[1].Level != "inter-node" {
		t.Errorf("json array: %v %+v", err, rows)
	}
	rows, err = ParseRows([]byte(jsonObj))
	if err != nil || len(rows) != 1 || rows[0].RateMBps != 80.5 {
		t.Errorf("json object: %v %+v", err, rows)
	}
	rows, err = ParseRows([]byte(csvHdr))
	if err != nil || len(rows) != 2 || rows[0].Level != "inter-node" {
		t.Errorf("csv with header: %v %+v", err, rows)
	}
	rows, err = ParseRows([]byte(csvBare))
	if err != nil || len(rows) != 2 || rows[1].SizeBytes != 65536 {
		t.Errorf("headerless csv: %v %+v", err, rows)
	}
	if _, err := ParseRows([]byte("   ")); err == nil {
		t.Error("blank input should fail")
	}
	if _, err := ParseRows([]byte("a,b\nc,d\n")); err == nil {
		t.Error("non-numeric csv body should fail")
	}
}

// TestFittedProfileRoundTripsJSON saves the fitted profile and loads it
// back: the loaded machine must answer RateAt identically.
func TestFittedProfileRoundTripsJSON(t *testing.T) {
	base := machine.CrayXE6()
	res, err := Fit(base, Synthesize(base, nil), "")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/fitted.json"
	if err := res.Machine.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := machine.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range netsim.Levels() {
		for _, mode := range []netsim.Mode{netsim.DataOnly, netsim.AddrData} {
			for _, cong := range []float64{1, 2, 4} {
				if got, want := loaded.Net.RateAt(l, mode, cong), base.Net.RateAt(l, mode, cong); got != want {
					t.Fatalf("loaded fitted profile: RateAt(%s,%s,%g) = %v, want %v", l, mode, cong, got, want)
				}
			}
		}
	}
}

func BenchmarkFit(b *testing.B) {
	base := machine.CrayXE6()
	rows := Synthesize(base, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(base, rows, ""); err != nil {
			b.Fatal(err)
		}
	}
}
