package calibrate

import (
	"fmt"
	"sync"

	"ctcomm/internal/machine"
	"ctcomm/internal/model"
	"ctcomm/internal/netsim"
)

// ToRateTable converts a measured calibration table plus the machine's
// network configuration into a model rate table, so the copy-transfer
// model can be evaluated against simulator-measured figures exactly as
// the paper evaluates it against live-measured ones.
func (t *Table) ToRateTable(m *machine.Machine) *model.RateTable {
	rt := model.NewRateTable("calibrated/" + t.Machine)
	for key, rate := range t.Rates {
		rt.SetKey(key, rate)
	}
	for _, mode := range []netsim.Mode{netsim.DataOnly, netsim.AddrData} {
		for _, c := range []float64{1, 2, 4} {
			rt.SetNet(mode, c, m.Net.Rate(mode, c))
		}
	}
	return rt
}

// RateTableFor measures machine m (with the default block size) and
// returns the resulting model rate table. This is the one-call bridge
// from "machine profile" to "model parameterization".
func RateTableFor(m *machine.Machine) *model.RateTable {
	return Measure(m, 0).ToRateTable(m)
}

// ToRateTableAt is ToRateTable with the network rates taken from one
// hierarchy tier of m instead of the flat (inter-node) rate, for
// queries that pin communication to a tier. The table name carries the
// tier so listed output distinguishes the parameterization.
func (t *Table) ToRateTableAt(m *machine.Machine, l netsim.Level) *model.RateTable {
	rt := model.NewRateTable("calibrated/" + t.Machine + "@" + l.String())
	for key, rate := range t.Rates {
		rt.SetKey(key, rate)
	}
	for _, mode := range []netsim.Mode{netsim.DataOnly, netsim.AddrData} {
		for _, c := range []float64{1, 2, 4} {
			rt.SetNet(mode, c, m.Net.RateAt(l, mode, c))
		}
	}
	return rt
}

// RateTableForAt is RateTableFor pinned to one hierarchy tier.
func RateTableForAt(m *machine.Machine, l netsim.Level) *model.RateTable {
	return Measure(m, 0).ToRateTableAt(m, l)
}

// Shared model-table memoization: RateTableFor rebuilds a fresh
// model.RateTable (map copy + net-rate reconstruction) on every call,
// which batch evaluation would pay once per cell. SharedRateTable
// returns one immutable table per distinct configuration instead.
var (
	sharedMu     sync.Mutex
	sharedTables = map[string]*sharedEntry{}
)

type sharedEntry struct {
	once  sync.Once
	table *model.RateTable
}

// SharedRateTable is RateTableFor without the per-call table
// reconstruction: the returned table is built at most once per distinct
// (machine configuration, network configuration) and shared. Callers
// MUST treat it as immutable — internal/query.Batch uses it so the
// thousands of cells of one sweep read one table instead of rebuilding
// it per cell. Unlike Measure, a cache hit does not replay simulator
// work into m's Stats; batch callers account calibration once, not per
// cell.
func SharedRateTable(m *machine.Machine) *model.RateTable {
	return sharedTable(m, "", func() *model.RateTable { return RateTableFor(m) })
}

// SharedRateTableAt is SharedRateTable pinned to one hierarchy tier;
// tables are shared per (configuration, tier).
func SharedRateTableAt(m *machine.Machine, l netsim.Level) *model.RateTable {
	return sharedTable(m, "@"+l.String(), func() *model.RateTable { return RateTableForAt(m, l) })
}

func sharedTable(m *machine.Machine, suffix string, build func() *model.RateTable) *model.RateTable {
	// The measurement fingerprint excludes the network configuration
	// (rate tables of basic transfers don't depend on it), but the model
	// table embeds net rates — tier-resolved when pinned — so key on the
	// network, topology and tier too. Hier is a pointer; include its
	// value, not its address.
	key := fingerprint(m, 0) + "|" + fmt.Sprintf("%+v|%+v|%+v%s", m.Net, m.Net.Hier, m.Topo, suffix)
	sharedMu.Lock()
	e, ok := sharedTables[key]
	if !ok {
		e = &sharedEntry{}
		sharedTables[key] = e
	}
	sharedMu.Unlock()
	e.once.Do(func() { e.table = build() })
	return e.table
}
