package calibrate

import (
	"ctcomm/internal/machine"
	"ctcomm/internal/model"
	"ctcomm/internal/netsim"
)

// ToRateTable converts a measured calibration table plus the machine's
// network configuration into a model rate table, so the copy-transfer
// model can be evaluated against simulator-measured figures exactly as
// the paper evaluates it against live-measured ones.
func (t *Table) ToRateTable(m *machine.Machine) *model.RateTable {
	rt := model.NewRateTable("calibrated/" + t.Machine)
	for key, rate := range t.Rates {
		rt.SetKey(key, rate)
	}
	for _, mode := range []netsim.Mode{netsim.DataOnly, netsim.AddrData} {
		for _, c := range []float64{1, 2, 4} {
			rt.SetNet(mode, c, m.Net.Rate(mode, c))
		}
	}
	return rt
}

// RateTableFor measures machine m (with the default block size) and
// returns the resulting model rate table. This is the one-call bridge
// from "machine profile" to "model parameterization".
func RateTableFor(m *machine.Machine) *model.RateTable {
	return Measure(m, 0).ToRateTable(m)
}
