package calibrate

import (
	"math"
	"sync"
	"testing"

	"ctcomm/internal/machine"
	"ctcomm/internal/model"
	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
	"ctcomm/internal/sim"
)

// paperBands lists the paper's measured rates (Tables 1-3) with the
// relative tolerance each simulated value must meet. Most entries hold
// within ±25%; the wider bands are documented calibration deviations
// (see EXPERIMENTS.md): the Paragon's measured indexed transfers are
// anomalously fast relative to its strided ones (wC1 = 45.1 > 64C1 =
// 31.1 even though both miss every cache line), a quirk of i860
// pipelined-load code scheduling our mechanism-level simulator does not
// reproduce.
var paperBands = map[string]map[string]struct {
	want float64
	tol  float64
}{
	"Cray T3D": {
		"1C1": {93, 0.15}, "1C64": {67.9, 0.15}, "64C1": {33.3, 0.25},
		"1Cw": {38.5, 0.25}, "wC1": {32.9, 0.20},
		"1S0": {126, 0.10}, "64S0": {35, 0.25}, "wS0": {32, 0.15},
		"0D1": {142, 0.10}, "0D64": {52, 0.15}, "0Dw": {52, 0.15},
	},
	"Intel Paragon": {
		"1C1": {67.6, 0.25}, "1C64": {27.6, 0.35}, "64C1": {31.1, 0.50},
		"1Cw": {35.2, 0.45}, "wC1": {45.1, 0.50},
		"1S0": {52, 0.25}, "1F0": {160, 0.10}, "64S0": {42, 0.15}, "wS0": {36, 0.40},
		"0R1": {82, 0.20}, "0R64": {38, 0.15}, "0Rw": {42, 0.15}, "0D1": {160, 0.10},
	},
}

func TestCalibrationMatchesPaperTables(t *testing.T) {
	for _, m := range machine.Profiles() {
		tab := Measure(m, 1<<16)
		for key, band := range paperBands[m.Name] {
			got, ok := tab.Get(key)
			if !ok {
				t.Errorf("%s: %s not measured", m.Name, key)
				continue
			}
			if math.Abs(got-band.want)/band.want > band.tol {
				t.Errorf("%s %s = %.1f MB/s, paper %.1f (tolerance ±%.0f%%)",
					m.Name, key, got, band.want, band.tol*100)
			}
		}
	}
}

// The orderings the paper's optimization insights rest on must hold
// exactly, not just within tolerance.
func TestCalibrationOrderings(t *testing.T) {
	t3d := Measure(machine.T3D(), 1<<16)
	par := Measure(machine.Paragon(), 1<<16)
	gt := func(tab *Table, a, b string) {
		t.Helper()
		ra, _ := tab.Get(a)
		rb, _ := tab.Get(b)
		if ra <= rb {
			t.Errorf("%s: %s (%.1f) should exceed %s (%.1f)", tab.Machine, a, ra, b, rb)
		}
	}
	// T3D: strided stores beat strided loads (write queue, Fig. 4).
	gt(t3d, "1C64", "64C1")
	gt(t3d, "1Cw", "wC1")
	// Paragon: strided loads beat strided stores (PFQ, Fig. 4).
	gt(par, "64C1", "1C64")
	// Contiguous beats strided everywhere.
	gt(t3d, "1C1", "1C64")
	gt(par, "1C1", "64C1")
	// The T3D deposit engine outruns any Paragon-style kicked DMA path
	// for strided patterns.
	gt(t3d, "0D64", "wS0")
	// Paragon DMA send crushes processor send for contiguous blocks.
	gt(par, "1F0", "1S0")
}

func TestMeasureSkipsUnsupported(t *testing.T) {
	tab := Measure(machine.T3D(), 1<<12)
	if _, ok := tab.Get("1F0"); ok {
		t.Error("T3D has no fetch engine; 1F0 must be absent")
	}
	ptab := Measure(machine.Paragon(), 1<<12)
	if _, ok := ptab.Get("0D64"); ok {
		t.Error("Paragon DMA cannot deposit strided; 0D64 must be absent")
	}
	if _, ok := ptab.Get("64F0"); ok {
		t.Error("Paragon DMA cannot fetch strided; 64F0 must be absent")
	}
}

func TestKeyHelper(t *testing.T) {
	if got := Key(pattern.Strided(64), 'C', pattern.Contig()); got != "64C1" {
		t.Errorf("Key = %q", got)
	}
}

func TestKeysSorted(t *testing.T) {
	tab := Measure(machine.T3D(), 1<<12)
	ks := tab.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatal("keys not sorted")
		}
	}
}

func TestStrideSweepShape(t *testing.T) {
	// Figure 4: on the T3D the store-strided curve stays above the
	// load-strided curve for large strides; on the Paragon the opposite.
	strides := []int{2, 8, 32, 64}
	t3d := StrideSweep(machine.T3D(), strides, 1<<14)
	for _, p := range t3d {
		if p.Stride >= 8 && p.StoreStride <= p.LoadStrided {
			t.Errorf("T3D stride %d: store-strided %.1f <= load-strided %.1f",
				p.Stride, p.StoreStride, p.LoadStrided)
		}
	}
	par := StrideSweep(machine.Paragon(), strides, 1<<14)
	for _, p := range par {
		if p.Stride >= 32 && p.LoadStrided <= p.StoreStride {
			t.Errorf("Paragon stride %d: load-strided %.1f <= store-strided %.1f",
				p.Stride, p.LoadStrided, p.StoreStride)
		}
	}
}

func TestStrideSweepMonotoneDecline(t *testing.T) {
	// Throughput falls (or at worst stays flat) as stride grows.
	pts := StrideSweep(machine.T3D(), []int{2, 4, 8, 16, 32, 64}, 1<<14)
	for i := 1; i < len(pts); i++ {
		if pts[i].StoreStride > pts[i-1].StoreStride*1.05 {
			t.Errorf("store-strided rose at stride %d: %.1f after %.1f",
				pts[i].Stride, pts[i].StoreStride, pts[i-1].StoreStride)
		}
	}
}

func TestToRateTable(t *testing.T) {
	m := machine.T3D()
	rt := RateTableFor(m)
	r, err := rt.Rate(model.C(pattern.Contig(), pattern.Contig()))
	if err != nil || r <= 0 {
		t.Fatalf("1C1 from calibrated table: %v, %v", r, err)
	}
	// Network rates present for both modes at the canonical congestions.
	for _, mode := range []netsim.Mode{netsim.DataOnly, netsim.AddrData} {
		for _, c := range []float64{1, 2, 4} {
			nr, err := rt.NetRate(mode, c)
			if err != nil || nr <= 0 {
				t.Errorf("%v@%v: %v, %v", mode, c, nr, err)
			}
		}
	}
}

// The end-to-end consistency check of the whole lower stack: the model
// evaluated with the *calibrated* (simulator-measured) rate table must
// agree with the model evaluated with the *paper's* rate table on the
// central claim, chained vs. packed, for the canonical patterns.
func TestCalibratedModelPreservesPaperConclusions(t *testing.T) {
	for _, m := range machine.Profiles() {
		rt := RateTableFor(m)
		caps := model.CapsOf(m)
		for _, pat := range [][2]pattern.Spec{
			{pattern.Contig(), pattern.Strided(64)},
			{pattern.Strided(64), pattern.Contig()},
			{pattern.Indexed(), pattern.Indexed()},
		} {
			packedE := model.BufferPacking(caps, pat[0], pat[1])
			packed, err := model.Evaluate(packedE, rt, m.DefaultCongestion)
			if err != nil {
				t.Fatalf("%s packed: %v", m.Name, err)
			}
			chainedE, err := model.Chained(caps, pat[0], pat[1])
			if err != nil {
				t.Fatal(err)
			}
			chained, err := model.Evaluate(chainedE, rt, m.DefaultCongestion)
			if err != nil {
				t.Fatalf("%s chained: %v", m.Name, err)
			}
			if chained <= packed {
				t.Errorf("%s %sQ%s (calibrated table): chained %.1f <= packed %.1f",
					m.Name, pat[0], pat[1], chained, packed)
			}
		}
	}
}

func TestBlockStridedBeatsPlainStrided(t *testing.T) {
	// The paper's block-strided class (2-word runs, e.g. complex
	// numbers; §2.2): dense runs merge in the write queue / share cache
	// lines, so block-strided transfers must beat single-word strided
	// ones of the same stride on both machines.
	for _, m := range machine.Profiles() {
		tab := Measure(m, 1<<14)
		plain, ok1 := tab.Get("1C64")
		blocked, ok2 := tab.Get("1C64x2")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing entries (1C64 %v, 1C64x2 %v)", m.Name, ok1, ok2)
		}
		if blocked <= plain {
			t.Errorf("%s: 1C64x2 %.1f <= 1C64 %.1f", m.Name, blocked, plain)
		}
		plainL, _ := tab.Get("64C1")
		blockedL, ok := tab.Get("64x2C1")
		if !ok {
			t.Fatalf("%s: 64x2C1 not measured", m.Name)
		}
		if blockedL <= plainL {
			t.Errorf("%s: 64x2C1 %.1f <= 64C1 %.1f", m.Name, blockedL, plainL)
		}
	}
}

func TestMeasureMemoized(t *testing.T) {
	m := machine.T3D()
	h0, m0 := CacheStats()
	a := Measure(m, 1<<13)
	h1, m1 := CacheStats()
	if m1 != m0+1 {
		t.Fatalf("first Measure: misses %d -> %d, want one new miss", m0, m1)
	}
	b := Measure(m, 1<<13)
	h2, _ := CacheStats()
	if h2 != h1+1 {
		t.Fatalf("second Measure: hits %d -> %d, want one new hit", h1, h2)
	}
	_ = h0
	if len(a.Rates) != len(b.Rates) {
		t.Fatalf("cached table differs in size: %d vs %d", len(a.Rates), len(b.Rates))
	}
	for k, v := range a.Rates {
		if b.Rates[k] != v {
			t.Errorf("cached rate %s: %v != %v", k, b.Rates[k], v)
		}
	}
	// The returned table must be a private copy.
	a.Rates["1C1"] = -1
	c := Measure(m, 1<<13)
	if c.Rates["1C1"] == -1 {
		t.Error("Measure returned a shared table; mutation leaked into the cache")
	}
}

func TestMeasureReplaysAttribution(t *testing.T) {
	// Every Measure call must attribute the same simulator work to the
	// caller's Stats, whether it hits or misses the cache — that is what
	// keeps serial and parallel experiment runs byte-identical.
	var s1, s2 sim.Stats
	m1 := machine.T3D().Observe(&s1)
	Measure(m1, 1<<12)
	m2 := machine.T3D().Observe(&s2)
	Measure(m2, 1<<12)
	if s1.Accesses() == 0 {
		t.Fatal("first Measure attributed no accesses")
	}
	if s1.Accesses() != s2.Accesses() || s1.SimTime() != s2.SimTime() {
		t.Errorf("attribution differs: accesses %d vs %d, simNs %v vs %v",
			s1.Accesses(), s2.Accesses(), s1.SimTime(), s2.SimTime())
	}
}

func TestMeasureConcurrentSingleflight(t *testing.T) {
	var wg sync.WaitGroup
	tables := make([]*Table, 8)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i] = Measure(machine.Paragon(), 1<<11)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tables); i++ {
		for k, v := range tables[0].Rates {
			if tables[i].Rates[k] != v {
				t.Fatalf("concurrent Measure %d: rate %s differs", i, k)
			}
		}
	}
}
