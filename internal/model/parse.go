package model

import (
	"fmt"
	"strings"

	"ctcomm/internal/netsim"
)

// Parse reads a copy-transfer expression in the paper's notation, e.g.
//
//	1C64
//	1S0 || Nd || 0D1
//	wC1 o (1S0 || Nd || 0D1) o 1Cw
//
// Accepted operators: "o", "∘" for sequential composition and "||", "‖"
// for parallel composition. Sequential composition binds tighter than
// parallel composition; parentheses group. Network leaves are "Nd" and
// "Nadp".
func Parse(text string) (Expr, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parsePar()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("model: trailing input %q", p.toks[p.pos])
	}
	if err := Check(e); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and tables.
func MustParse(text string) Expr {
	e, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return e
}

func lex(text string) ([]string, error) {
	replacer := strings.NewReplacer("∘", " o ", "‖", " || ", "(", " ( ", ")", " ) ")
	text = replacer.Replace(text)
	fields := strings.Fields(text)
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		// Split any accidental "||"-adjacent junk conservatively: fields
		// are already whitespace separated; just validate shape later.
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("model: empty expression")
	}
	return out, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

// parsePar := parseSeq ('||' parseSeq)*
func (p *parser) parsePar() (Expr, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for p.peek() == "||" {
		p.next()
		e, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return NewPar(parts...), nil
}

// parseSeq := primary ('o' primary)*
func (p *parser) parseSeq() (Expr, error) {
	first, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for p.peek() == "o" {
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return NewSeq(parts...), nil
}

// parsePrimary := '(' parsePar ')' | term | 'Nd' | 'Nadp'
func (p *parser) parsePrimary() (Expr, error) {
	tok := p.next()
	switch tok {
	case "":
		return nil, fmt.Errorf("model: unexpected end of expression")
	case "(":
		e, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		if got := p.next(); got != ")" {
			return nil, fmt.Errorf("model: expected ')', got %q", got)
		}
		return e, nil
	case ")", "o", "||":
		return nil, fmt.Errorf("model: unexpected token %q", tok)
	case "Nd":
		return Net{netsim.DataOnly}, nil
	case "Nadp":
		return Net{netsim.AddrData}, nil
	default:
		t, err := ParseTerm(tok)
		if err != nil {
			return nil, err
		}
		return Basic{t}, nil
	}
}
