// Package model implements the copy-transfer model of Stricker/Gross
// (ISCA 1995, §3): a small algebra that describes inter-node
// communication operations as compositions of basic transfers and
// estimates their throughput from per-transfer rate tables.
//
// Basic transfers are written in the paper's notation with the read
// pattern as a left subscript and the write pattern as a right
// subscript, e.g. 1C64 (contiguous loads, stride-64 stores) or wS0
// (indexed loads into the network port). Network transfers are Nd
// (data only) and Nadp (address-data pairs). Compositions use ∘ for
// sequential steps sharing a resource and ‖ for parallel steps on
// disjoint resources; the three evaluation rules are:
//
//	| X ‖ Y |  =  min(|X|, |Y|)
//	| X ∘ Y |  =  1 / (1/|X| + 1/|Y|)
//	resource constraints cap the result (e.g. 2·|Q| ≤ bus bandwidth)
package model

import (
	"fmt"

	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
)

// Op identifies a basic intra-node transfer kind (paper §3.2).
type Op byte

const (
	// OpCopy is xCy, the local memory-to-memory copy.
	OpCopy Op = 'C'
	// OpLoadSend is xS0, processor loads stored to the network port.
	OpLoadSend Op = 'S'
	// OpFetchSend is xF0, a background fetch engine feeding the network.
	OpFetchSend Op = 'F'
	// OpRecvStore is 0Ry, the processor storing incoming words.
	OpRecvStore Op = 'R'
	// OpRecvDeposit is 0Dy, the deposit engine storing incoming words.
	OpRecvDeposit Op = 'D'
)

// Valid reports whether the op is one of the five basic transfers.
func (o Op) Valid() bool {
	switch o {
	case OpCopy, OpLoadSend, OpFetchSend, OpRecvStore, OpRecvDeposit:
		return true
	}
	return false
}

// Term is one basic intra-node transfer with its access patterns.
type Term struct {
	Op    Op
	Read  pattern.Spec
	Write pattern.Spec
}

// NewTerm builds a term and validates the pattern shapes required by the
// paper's definitions: sends write to the port (write pattern 0),
// receives read from the port (read pattern 0), and copies touch memory
// on both sides.
func NewTerm(op Op, read, write pattern.Spec) (Term, error) {
	t := Term{Op: op, Read: read, Write: write}
	if !op.Valid() {
		return t, fmt.Errorf("model: invalid op %q", string(op))
	}
	switch op {
	case OpCopy:
		if !read.IsMemory() || !write.IsMemory() {
			return t, fmt.Errorf("model: %s requires memory patterns on both sides", t)
		}
	case OpLoadSend, OpFetchSend:
		if !read.IsMemory() || write.IsMemory() {
			return t, fmt.Errorf("model: %s must read memory and write the port", t)
		}
	case OpRecvStore, OpRecvDeposit:
		if read.IsMemory() || !write.IsMemory() {
			return t, fmt.Errorf("model: %s must read the port and write memory", t)
		}
	}
	return t, nil
}

// MustTerm is NewTerm that panics on error, for package-level tables.
func MustTerm(op Op, read, write pattern.Spec) Term {
	t, err := NewTerm(op, read, write)
	if err != nil {
		panic(err)
	}
	return t
}

// String renders the term in the paper's notation, e.g. "64C1".
func (t Term) String() string {
	return fmt.Sprintf("%s%c%s", t.Read, t.Op, t.Write)
}

// Key returns the canonical rate-table key (same as String).
func (t Term) Key() string { return t.String() }

// Convenience constructors for the common terms.

// C returns the local copy term xCy.
func C(read, write pattern.Spec) Term { return MustTerm(OpCopy, read, write) }

// S returns the load-send term xS0.
func S(read pattern.Spec) Term { return MustTerm(OpLoadSend, read, pattern.Fixed()) }

// F returns the fetch-send term xF0.
func F(read pattern.Spec) Term { return MustTerm(OpFetchSend, read, pattern.Fixed()) }

// R returns the receive-store term 0Ry.
func R(write pattern.Spec) Term { return MustTerm(OpRecvStore, pattern.Fixed(), write) }

// D returns the receive-deposit term 0Dy.
func D(write pattern.Spec) Term { return MustTerm(OpRecvDeposit, pattern.Fixed(), write) }

// NetName renders a network mode in the paper's notation.
func NetName(m netsim.Mode) string { return m.String() }
