package model

import "ctcomm/internal/netsim"

// Published measurement tables from the paper (Tables 1-4), in MB/s.
// These parameterize the model exactly as the authors' live measurements
// did; internal/calibrate produces the equivalent tables from the
// simulated machines.

// PaperT3D returns the paper's measured basic-transfer rates for the
// Cray T3D.
func PaperT3D() *RateTable {
	rt := NewRateTable("paper/T3D")
	for key, mbps := range map[string]float64{
		// Table 1: local memory-to-memory copies.
		"1C1": 93, "1C64": 67.9, "64C1": 33.3, "1Cw": 38.5, "wC1": 32.9,
		// Table 2: send transfers.
		"1S0": 126, "64S0": 35, "wS0": 32,
		// Table 3: receive transfers.
		"0D1": 142, "0D64": 52, "0Dw": 52,
	} {
		rt.SetKey(key, mbps)
	}
	// Table 4: network bandwidth vs. fixed congestion.
	for c, mbps := range map[float64]float64{1: 142, 2: 69, 4: 35} {
		rt.SetNet(netsim.DataOnly, c, mbps)
	}
	for c, mbps := range map[float64]float64{1: 62, 2: 38, 4: 20} {
		rt.SetNet(netsim.AddrData, c, mbps)
	}
	return rt
}

// PaperParagon returns the paper's measured basic-transfer rates for the
// Intel Paragon.
func PaperParagon() *RateTable {
	rt := NewRateTable("paper/Paragon")
	for key, mbps := range map[string]float64{
		// Table 1.
		"1C1": 67.6, "1C64": 27.6, "64C1": 31.1, "1Cw": 35.2, "wC1": 45.1,
		// Table 2.
		"1S0": 52, "1F0": 160, "64S0": 42, "wS0": 36,
		// Table 3.
		"0R1": 82, "0R64": 38, "0Rw": 42, "0D1": 160,
	} {
		rt.SetKey(key, mbps)
	}
	// Table 4.
	for c, mbps := range map[float64]float64{1: 176, 2: 90, 4: 44} {
		rt.SetNet(netsim.DataOnly, c, mbps)
	}
	for c, mbps := range map[float64]float64{1: 88, 2: 45, 4: 22} {
		rt.SetNet(netsim.AddrData, c, mbps)
	}
	return rt
}

// PaperTables returns both published tables keyed by machine name as
// used by internal/machine profiles.
func PaperTables() map[string]*RateTable {
	return map[string]*RateTable{
		"Cray T3D":      PaperT3D(),
		"Intel Paragon": PaperParagon(),
	}
}
