package model

import (
	"testing"

	"ctcomm/internal/netsim"
)

// FuzzParse exercises the expression parser with arbitrary input: it
// must never panic, and anything it accepts must re-parse to the same
// canonical form (print/parse fixed point).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1C1",
		"wC1 o (1S0 || Nd || 0D1) o 1Cw",
		"64x2C1",
		"(1C1 o 1C1) || Nadp",
		"1C64 o 64C1",
		"o", "||", "((", "Nd Nd", "1C1 o (1S0",
		"∘ ‖", "0D0", "1Q1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		e, err := Parse(text)
		if err != nil {
			return
		}
		canon := e.String()
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("accepted %q -> %q, which does not re-parse: %v", text, canon, err)
		}
		if e2.String() != canon {
			t.Fatalf("print/parse not a fixed point: %q -> %q", canon, e2.String())
		}
		// Anything parseable must evaluate against a fully-populated
		// table without panicking (errors are fine: unusual patterns may
		// have no rate).
		rt := PaperT3D()
		rt.SetNet(netsim.DataOnly, 2, 69)
		_, _ = Evaluate(e, rt, 2)
	})
}

// FuzzParseTerm checks the term key parser for panics and round trips.
func FuzzParseTerm(f *testing.F) {
	for _, seed := range []string{"1C1", "64S0", "0Dw", "wC64", "64x2C1", "xCx", "1Q1", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, key string) {
		term, err := ParseTerm(key)
		if err != nil {
			return
		}
		back, err := ParseTerm(term.Key())
		if err != nil || back != term {
			t.Fatalf("term round trip failed: %q -> %v -> %v (%v)", key, term, back, err)
		}
	})
}
