package model

import (
	"fmt"
	"math"
)

// Hockney characterization of a communication operation. The
// copy-transfer model is deliberately throughput-only (paper §3.1: for
// large collections "the transfer mainly depends on the maximal
// throughput ... rather than on the latency and overhead for
// transferring a single element"); for finite messages the classic
// r∞/n½ parameterization of the era closes the gap:
//
//	t(n)    = t0 + n / rInf
//	rate(n) = rInf · n / (n + n½),  n½ = t0 · rInf
//
// where rInf is the asymptotic rate and n½ the half-performance message
// length — the block size at which half of rInf is reached. Figure 1's
// curves are exactly this shape.
type RateCurve struct {
	// RInfMBps is the asymptotic throughput.
	RInfMBps float64
	// StartupNs is the per-message constant time t0.
	StartupNs float64
}

// NewRateCurve validates and returns a curve.
func NewRateCurve(rInfMBps, startupNs float64) (RateCurve, error) {
	if rInfMBps <= 0 {
		return RateCurve{}, fmt.Errorf("model: asymptotic rate must be positive, got %g", rInfMBps)
	}
	if startupNs < 0 {
		return RateCurve{}, fmt.Errorf("model: negative startup %g", startupNs)
	}
	return RateCurve{RInfMBps: rInfMBps, StartupNs: startupNs}, nil
}

// NHalfBytes returns the half-performance message length n½ in bytes.
func (c RateCurve) NHalfBytes() float64 {
	// n½ = t0 · rInf ; MB/s · ns = 1e-3 bytes.
	return c.StartupNs * c.RInfMBps * 1e-3
}

// TimeNs returns the transfer time of a message of n bytes.
func (c RateCurve) TimeNs(bytes int64) float64 {
	return c.StartupNs + float64(bytes)*1e3/c.RInfMBps
}

// RateMBps returns the effective throughput for a message of n bytes.
func (c RateCurve) RateMBps(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) * 1e3 / c.TimeNs(bytes)
}

// FitRateCurve fits (rInf, t0) to measured (bytes, MB/s) samples by the
// least-squares line through the equivalent time form
// t = t0 + bytes/rInf. At least two distinct sizes are required.
func FitRateCurve(bytes []int64, mbps []float64) (RateCurve, error) {
	if len(bytes) != len(mbps) || len(bytes) < 2 {
		return RateCurve{}, fmt.Errorf("model: need >= 2 paired samples, got %d/%d", len(bytes), len(mbps))
	}
	// Convert each sample to (x=bytes, y=time ns) and fit y = a + b x.
	var sx, sy, sxx, sxy float64
	n := float64(len(bytes))
	for i := range bytes {
		if bytes[i] <= 0 || mbps[i] <= 0 {
			return RateCurve{}, fmt.Errorf("model: non-positive sample at %d", i)
		}
		x := float64(bytes[i])
		y := x * 1e3 / mbps[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return RateCurve{}, fmt.Errorf("model: need at least two distinct sizes")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	if b <= 0 {
		return RateCurve{}, fmt.Errorf("model: fitted non-positive per-byte time %g", b)
	}
	if a < 0 {
		a = 0
	}
	return RateCurve{RInfMBps: 1e3 / b, StartupNs: a}, nil
}

// RelErr returns the curve's maximum relative rate error over samples.
func (c RateCurve) RelErr(bytes []int64, mbps []float64) float64 {
	worst := 0.0
	for i := range bytes {
		got := c.RateMBps(bytes[i])
		if mbps[i] <= 0 {
			continue
		}
		if e := math.Abs(got-mbps[i]) / mbps[i]; e > worst {
			worst = e
		}
	}
	return worst
}
