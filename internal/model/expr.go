package model

import (
	"fmt"
	"strings"

	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
)

// Expr is a copy-transfer expression: a basic transfer, a network
// transfer, or a sequential/parallel composition.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Basic is a leaf holding one intra-node basic transfer.
type Basic struct{ Term Term }

// Net is a leaf holding one network transfer (Nd or Nadp).
type Net struct{ Mode netsim.Mode }

// Seq is the sequential composition X ∘ Y ∘ ...: the steps share a
// resource, so their times add (reciprocal throughput sum).
type Seq struct{ Parts []Expr }

// Par is the parallel composition X ‖ Y ‖ ...: the steps use disjoint
// resources, so the slowest step limits throughput.
type Par struct{ Parts []Expr }

func (Basic) isExpr() {}
func (Net) isExpr()   {}
func (Seq) isExpr()   {}
func (Par) isExpr()   {}

// String renders the expression in the paper's (ASCII) notation:
// "o" for ∘ and "||" for ‖, parenthesizing compositions.
func (b Basic) String() string { return b.Term.String() }

func (n Net) String() string { return n.Mode.String() }

func (s Seq) String() string { return join(s.Parts, " o ") }

func (p Par) String() string { return join(p.Parts, " || ") }

func join(parts []Expr, sep string) string {
	ss := make([]string, len(parts))
	for i, p := range parts {
		switch p.(type) {
		case Seq, Par:
			ss[i] = "(" + p.String() + ")"
		default:
			ss[i] = p.String()
		}
	}
	return strings.Join(ss, sep)
}

// NewSeq builds a sequential composition, flattening nested Seqs.
func NewSeq(parts ...Expr) Expr {
	flat := make([]Expr, 0, len(parts))
	for _, p := range parts {
		if s, ok := p.(Seq); ok {
			flat = append(flat, s.Parts...)
		} else {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Seq{Parts: flat}
}

// NewPar builds a parallel composition, flattening nested Pars.
func NewPar(parts ...Expr) Expr {
	flat := make([]Expr, 0, len(parts))
	for _, p := range parts {
		if q, ok := p.(Par); ok {
			flat = append(flat, q.Parts...)
		} else {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Par{Parts: flat}
}

// Boundary returns the end-to-end read and write patterns of an
// expression: the pattern with which data leaves source memory and the
// pattern with which it lands in destination memory. For a Par it is
// the patterns of the sending and receiving elements; a pure network
// expression has no memory boundary (ok=false on that side is reported
// as the port pattern 0).
func Boundary(e Expr) (read, write pattern.Spec) {
	switch v := e.(type) {
	case Basic:
		return v.Term.Read, v.Term.Write
	case Net:
		return pattern.Fixed(), pattern.Fixed()
	case Seq:
		if len(v.Parts) == 0 {
			return pattern.Fixed(), pattern.Fixed()
		}
		r, _ := Boundary(v.Parts[0])
		_, w := Boundary(v.Parts[len(v.Parts)-1])
		return r, w
	case Par:
		read, write = pattern.Fixed(), pattern.Fixed()
		for _, p := range v.Parts {
			r, w := Boundary(p)
			if r.IsMemory() {
				read = r
			}
			if w.IsMemory() {
				write = w
			}
		}
		return read, write
	default:
		return pattern.Fixed(), pattern.Fixed()
	}
}

// Check validates the composition rules of §3.3: within a Seq, the write
// pattern of each step must match the read pattern of the next (data are
// handed over in the same layout they were produced in).
func Check(e Expr) error {
	switch v := e.(type) {
	case Basic, Net:
		return nil
	case Seq:
		for _, p := range v.Parts {
			if err := Check(p); err != nil {
				return err
			}
		}
		for i := 0; i+1 < len(v.Parts); i++ {
			_, w := Boundary(v.Parts[i])
			r, _ := Boundary(v.Parts[i+1])
			// Port boundaries (pattern 0) hand data over through the
			// network and always match.
			if w.IsMemory() && r.IsMemory() && w != r {
				return fmt.Errorf("model: pattern mismatch in %q: step %d writes %s but step %d reads %s",
					e, i, w, i+1, r)
			}
		}
		return nil
	case Par:
		for _, p := range v.Parts {
			if err := Check(p); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("model: unknown expression type %T", e)
	}
}

// Evaluate estimates the throughput |e| in MB/s using the rate table and
// the three composition rules, at the given network congestion factor.
func Evaluate(e Expr, rt *RateTable, congestion float64) (float64, error) {
	switch v := e.(type) {
	case Basic:
		return rt.Rate(v.Term)
	case Net:
		return rt.NetRate(v.Mode, congestion)
	case Seq:
		if len(v.Parts) == 0 {
			return 0, fmt.Errorf("model: empty sequential composition")
		}
		inv := 0.0
		for _, p := range v.Parts {
			r, err := Evaluate(p, rt, congestion)
			if err != nil {
				return 0, err
			}
			if r <= 0 {
				return 0, fmt.Errorf("model: non-positive rate for %q", p)
			}
			inv += 1 / r
		}
		return 1 / inv, nil
	case Par:
		if len(v.Parts) == 0 {
			return 0, fmt.Errorf("model: empty parallel composition")
		}
		min := 0.0
		for i, p := range v.Parts {
			r, err := Evaluate(p, rt, congestion)
			if err != nil {
				return 0, err
			}
			if i == 0 || r < min {
				min = r
			}
		}
		return min, nil
	default:
		return 0, fmt.Errorf("model: unknown expression type %T", e)
	}
}

// Constraint is a resource constraint (§3.3, rule "<"): Mult times the
// operation's throughput may not exceed CapMBps (e.g. when every node
// sends and receives simultaneously, 2·|Q| must fit the memory-system
// bandwidth). Name documents the constrained resource.
type Constraint struct {
	Name    string
	Mult    float64
	CapMBps float64
}

// Apply caps the rate under the constraint.
func (c Constraint) Apply(rate float64) float64 {
	if c.Mult <= 0 {
		return rate
	}
	if lim := c.CapMBps / c.Mult; rate > lim {
		return lim
	}
	return rate
}

// EvaluateConstrained evaluates e and then applies each constraint.
func EvaluateConstrained(e Expr, rt *RateTable, congestion float64, cons ...Constraint) (float64, error) {
	r, err := Evaluate(e, rt, congestion)
	if err != nil {
		return 0, err
	}
	for _, c := range cons {
		r = c.Apply(r)
	}
	return r, nil
}

// Bottleneck returns the leaf (basic or network transfer) that limits
// the expression's throughput: the parallel branch with the minimum
// rate, descending through sequential compositions into their slowest
// stage. For a sequential composition every stage contributes, so the
// slowest stage is reported as the first optimization target (it has
// the largest share of the reciprocal sum).
func Bottleneck(e Expr, rt *RateTable, congestion float64) (Expr, float64, error) {
	switch v := e.(type) {
	case Basic, Net:
		r, err := Evaluate(e, rt, congestion)
		return e, r, err
	case Seq:
		var worst Expr
		worstRate := 0.0
		for _, p := range v.Parts {
			leaf, r, err := Bottleneck(p, rt, congestion)
			if err != nil {
				return nil, 0, err
			}
			if worst == nil || r < worstRate {
				worst, worstRate = leaf, r
			}
		}
		if worst == nil {
			return nil, 0, fmt.Errorf("model: empty sequential composition")
		}
		return worst, worstRate, nil
	case Par:
		var worst Expr
		worstRate := 0.0
		for _, p := range v.Parts {
			r, err := Evaluate(p, rt, congestion)
			if err != nil {
				return nil, 0, err
			}
			if worst == nil || r < worstRate {
				// Descend into the limiting branch for its own leaf.
				leaf, lr, err := Bottleneck(p, rt, congestion)
				if err != nil {
					return nil, 0, err
				}
				worst, worstRate = leaf, lr
				_ = r
			}
		}
		if worst == nil {
			return nil, 0, fmt.Errorf("model: empty parallel composition")
		}
		return worst, worstRate, nil
	default:
		return nil, 0, fmt.Errorf("model: unknown expression type %T", e)
	}
}
