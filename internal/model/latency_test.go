package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRateCurveBasics(t *testing.T) {
	c, err := NewRateCurve(100, 10000) // 100 MB/s, 10 us startup
	if err != nil {
		t.Fatal(err)
	}
	// n½ = t0 * rInf = 10000 ns * 100 MB/s = 1e6 ns·B/ms ... = 1000 B.
	if got := c.NHalfBytes(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("n½ = %v, want 1000", got)
	}
	// At n = n½ the rate is half of rInf.
	if got := c.RateMBps(1000); math.Abs(got-50) > 1e-9 {
		t.Errorf("rate(n½) = %v, want 50", got)
	}
	// Huge messages approach rInf.
	if got := c.RateMBps(1 << 30); got < 99.9 {
		t.Errorf("rate(1GB) = %v, want ~100", got)
	}
	if c.RateMBps(0) != 0 {
		t.Error("zero-byte rate should be 0")
	}
}

func TestNewRateCurveValidation(t *testing.T) {
	if _, err := NewRateCurve(0, 0); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewRateCurve(10, -1); err == nil {
		t.Error("negative startup should fail")
	}
}

func TestFitRateCurveExact(t *testing.T) {
	truth, _ := NewRateCurve(80, 25000)
	sizes := []int64{128, 1024, 8192, 65536, 1 << 20}
	rates := make([]float64, len(sizes))
	for i, n := range sizes {
		rates[i] = truth.RateMBps(n)
	}
	fit, err := FitRateCurve(sizes, rates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.RInfMBps-80)/80 > 1e-6 {
		t.Errorf("rInf = %v, want 80", fit.RInfMBps)
	}
	if math.Abs(fit.StartupNs-25000)/25000 > 1e-6 {
		t.Errorf("t0 = %v, want 25000", fit.StartupNs)
	}
	if fit.RelErr(sizes, rates) > 1e-9 {
		t.Errorf("rel err = %v", fit.RelErr(sizes, rates))
	}
}

func TestFitRateCurveValidation(t *testing.T) {
	if _, err := FitRateCurve([]int64{1}, []float64{1}); err == nil {
		t.Error("single sample should fail")
	}
	if _, err := FitRateCurve([]int64{8, 8}, []float64{1, 1}); err == nil {
		t.Error("identical sizes should fail")
	}
	if _, err := FitRateCurve([]int64{8, -1}, []float64{1, 1}); err == nil {
		t.Error("negative size should fail")
	}
}

// Property: fitting exact curve samples recovers the curve.
func TestFitRoundTripProperty(t *testing.T) {
	f := func(rRaw, tRaw uint16) bool {
		r := float64(rRaw%500) + 1
		t0 := float64(tRaw) * 10
		truth, err := NewRateCurve(r, t0)
		if err != nil {
			return false
		}
		sizes := []int64{64, 4096, 1 << 18}
		rates := make([]float64, len(sizes))
		for i, n := range sizes {
			rates[i] = truth.RateMBps(n)
		}
		fit, err := FitRateCurve(sizes, rates)
		if err != nil {
			return false
		}
		return fit.RelErr(sizes, rates) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
