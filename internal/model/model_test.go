package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ctcomm/internal/machine"
	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
)

func almost(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %.2f, want %.2f (±%.0f%%)", name, got, want, relTol*100)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{C(pattern.Contig(), pattern.Strided(64)), "1C64"},
		{C(pattern.Indexed(), pattern.Contig()), "wC1"},
		{S(pattern.Strided(64)), "64S0"},
		{F(pattern.Contig()), "1F0"},
		{R(pattern.Strided(64)), "0R64"},
		{D(pattern.Indexed()), "0Dw"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	for _, key := range []string{"1C1", "1C64", "64C1", "wC1", "1Cw", "wCw", "1S0", "64S0", "wS0", "1F0", "0R1", "0R64", "0Rw", "0D1", "0D64", "0Dw"} {
		term, err := ParseTerm(key)
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", key, err)
		}
		if term.Key() != key {
			t.Errorf("round trip %q -> %q", key, term.Key())
		}
	}
}

func TestParseTermRejects(t *testing.T) {
	for _, key := range []string{"", "C", "1C", "C1", "1X1", "0C1", "1C0", "1S1", "0S0", "1R1", "0F0", "xCy"} {
		if _, err := ParseTerm(key); err == nil {
			t.Errorf("ParseTerm(%q) should fail", key)
		}
	}
}

func TestNewTermShapeValidation(t *testing.T) {
	// Send must write the port.
	if _, err := NewTerm(OpLoadSend, pattern.Contig(), pattern.Contig()); err == nil {
		t.Error("S with memory write should fail")
	}
	// Receive must read the port.
	if _, err := NewTerm(OpRecvDeposit, pattern.Contig(), pattern.Contig()); err == nil {
		t.Error("D with memory read should fail")
	}
	// Copy must not touch the port.
	if _, err := NewTerm(OpCopy, pattern.Fixed(), pattern.Contig()); err == nil {
		t.Error("C with port read should fail")
	}
}

func TestExprString(t *testing.T) {
	e := MustParse("wC1 o (1S0 || Nd || 0D1) o 1Cw")
	want := "wC1 o (1S0 || Nd || 0D1) o 1Cw"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseReparse(t *testing.T) {
	for _, text := range []string{
		"1C1",
		"Nd",
		"1S0 || Nd || 0D1",
		"1C1 o 1C1",
		"wC1 o (1S0 || Nadp || 0Dw) o wCw",
		"(1C1 o 1C1) || Nd",
	} {
		e, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", text, e.String(), err)
		}
		if e.String() != e2.String() {
			t.Errorf("not a fixed point: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestParseUnicodeOperators(t *testing.T) {
	a := MustParse("1C1 ∘ (1S0 ‖ Nd ‖ 0D1)")
	b := MustParse("1C1 o (1S0 || Nd || 0D1)")
	if a.String() != b.String() {
		t.Errorf("unicode parse %q != ascii parse %q", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"", "o", "||", "1C1 o", "o 1C1", "(1C1", "1C1)", "1C1 1C1", "Nx",
		"1C1 o )", "((1C1)", "1C64 o 1C1 o", // trailing operator
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestCheckPatternMatching(t *testing.T) {
	// Write pattern of step i must match read pattern of step i+1.
	if _, err := Parse("1C64 o 1C1"); err == nil {
		t.Error("1C64 o 1C1 should fail the matching rule (64 != 1)")
	}
	if _, err := Parse("1C64 o 64C1"); err != nil {
		t.Errorf("1C64 o 64C1 should pass: %v", err)
	}
	// Port handoffs always match.
	if _, err := Parse("wC1 o (1S0 || Nd || 0D64) o 64C1"); err != nil {
		t.Errorf("port handoff should pass: %v", err)
	}
}

func TestBoundary(t *testing.T) {
	e := MustParse("wC1 o (1S0 || Nd || 0D64) o 64C1")
	r, w := Boundary(e)
	if r != pattern.Indexed() || w != pattern.Contig() {
		t.Errorf("boundary = %v,%v, want w,1", r, w)
	}
	r, w = Boundary(MustParse("64S0 || Nadp || 0Dw"))
	if r != pattern.Strided(64) || w != pattern.Indexed() {
		t.Errorf("par boundary = %v,%v, want 64,w", r, w)
	}
}

func TestEvaluateRules(t *testing.T) {
	rt := NewRateTable("test")
	rt.SetKey("1C1", 100)
	rt.SetKey("1S0", 50)
	rt.SetKey("0D1", 200)
	rt.SetNet(netsim.DataOnly, 1, 150)

	// Parallel = min.
	got, err := Evaluate(MustParse("1S0 || Nd || 0D1"), rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("par = %v, want 50", got)
	}
	// Sequential = harmonic sum: 1/(1/100+1/100) = 50.
	got, err = Evaluate(MustParse("1C1 o 1C1"), rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("seq = %v, want 50", got)
	}
}

func TestEvaluateMissingRate(t *testing.T) {
	rt := NewRateTable("empty")
	if _, err := Evaluate(MustParse("1C1"), rt, 1); err == nil {
		t.Error("missing rate should error")
	}
	if _, err := Evaluate(MustParse("Nd"), rt, 1); err == nil {
		t.Error("missing net rate should error")
	}
}

func TestConstraint(t *testing.T) {
	c := AAPCConstraint(100) // 2x|Q| <= 100 -> cap 50
	if got := c.Apply(80); got != 50 {
		t.Errorf("Apply(80) = %v, want 50", got)
	}
	if got := c.Apply(30); got != 30 {
		t.Errorf("Apply(30) = %v, want 30", got)
	}
	rt := NewRateTable("test")
	rt.SetKey("1C1", 120)
	got, err := EvaluateConstrained(MustParse("1C1"), rt, 1, c)
	if err != nil || got != 50 {
		t.Errorf("EvaluateConstrained = %v,%v want 50,nil", got, err)
	}
}

func TestStrideInterpolation(t *testing.T) {
	rt := PaperT3D()
	// Exact points return as-is.
	r, err := rt.Rate(C(pattern.Contig(), pattern.Strided(64)))
	if err != nil || r != 67.9 {
		t.Fatalf("1C64 = %v,%v", r, err)
	}
	// Strides beyond 64 use the stride-64 value (paper §4.2).
	r, err = rt.Rate(C(pattern.Contig(), pattern.Strided(1024)))
	if err != nil || r != 67.9 {
		t.Errorf("1C1024 = %v,%v, want 67.9", r, err)
	}
	// Intermediate strides interpolate monotonically between endpoints.
	r16, err := rt.Rate(C(pattern.Contig(), pattern.Strided(16)))
	if err != nil {
		t.Fatal(err)
	}
	if r16 <= 67.9 || r16 >= 93 {
		t.Errorf("1C16 = %v, want between 67.9 and 93", r16)
	}
	// Send-side stride interpolation.
	s16, err := rt.Rate(S(pattern.Strided(16)))
	if err != nil {
		t.Fatal(err)
	}
	if s16 <= 35 || s16 >= 126 {
		t.Errorf("16S0 = %v, want between 35 and 126", s16)
	}
}

func TestStrideInterpolationMonotone(t *testing.T) {
	rt := PaperT3D()
	prev := math.Inf(1)
	for _, s := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		r, err := rt.Rate(C(pattern.Contig(), pattern.Strided(s)))
		if err != nil {
			t.Fatal(err)
		}
		if r > prev+1e-9 {
			t.Errorf("1C%d = %v not monotone (prev %v)", s, r, prev)
		}
		prev = r
	}
}

func TestNetRateScaling(t *testing.T) {
	rt := PaperT3D()
	// Exact points.
	r, err := rt.NetRate(netsim.DataOnly, 2)
	if err != nil || r != 69 {
		t.Fatalf("Nd@2 = %v,%v", r, err)
	}
	// Off-grid congestion scales ~1/c from the nearest point.
	r8, err := rt.NetRate(netsim.DataOnly, 8)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Nd@8", r8, 35.0/2, 0.05)
	// Congestion below 1 clamps.
	r1, _ := rt.NetRate(netsim.DataOnly, 0.5)
	if r1 != 142 {
		t.Errorf("Nd@0.5 = %v, want 142", r1)
	}
}

func TestRateTableKeys(t *testing.T) {
	rt := PaperT3D()
	ks := rt.Keys()
	if len(ks) != 11 {
		t.Errorf("T3D paper table has %d keys, want 11", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Error("keys not sorted")
		}
	}
}

// The heart of the reproduction: the model, fed with the paper's Tables
// 1-4, must reproduce the paper's published model estimates.

func TestPaperT3DBufferPackingEstimates(t *testing.T) {
	rt := PaperT3D()
	caps := CapsOf(machine.T3D())
	cases := []struct {
		x, y pattern.Spec
		want float64
		tol  float64
	}{
		{pattern.Contig(), pattern.Contig(), 27.9, 0.05},
		{pattern.Contig(), pattern.Strided(64), 25.2, 0.05},
		{pattern.Strided(64), pattern.Contig(), 17.1, 0.10},
		{pattern.Indexed(), pattern.Indexed(), 14.2, 0.05},
	}
	for _, c := range cases {
		e := BufferPacking(caps, c.x, c.y)
		got, err := Evaluate(e, rt, 2)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		almost(t, "T3D packed "+c.x.String()+"Q"+c.y.String(), got, c.want, c.tol)
	}
}

func TestPaperT3DChainedEstimates(t *testing.T) {
	rt := PaperT3D()
	caps := CapsOf(machine.T3D())
	cases := []struct {
		x, y pattern.Spec
		want float64
		tol  float64
	}{
		{pattern.Contig(), pattern.Contig(), 70, 0.05},
		{pattern.Contig(), pattern.Strided(64), 38, 0.05},
		{pattern.Indexed(), pattern.Indexed(), 32, 0.05},
	}
	for _, c := range cases {
		e, err := Chained(caps, c.x, c.y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(e, rt, 2)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		almost(t, "T3D chained "+c.x.String()+"Q'"+c.y.String(), got, c.want, c.tol)
	}
}

func TestPaperParagonBufferPackingEstimates(t *testing.T) {
	rt := PaperParagon()
	caps := CapsOf(machine.Paragon()) // sequential §5.1.3 formula by default
	cases := []struct {
		x, y pattern.Spec
		want float64
		tol  float64
	}{
		// Paper's 1Q1=20.7 is inconsistent with its own formula
		// (1F0||Nd||0D1 with copies gives 24.6); allow a wide band.
		{pattern.Contig(), pattern.Contig(), 20.7, 0.25},
		{pattern.Contig(), pattern.Strided(64), 16.1, 0.05},
		{pattern.Strided(16), pattern.Strided(64), 14.9, 0.15},
		{pattern.Indexed(), pattern.Indexed(), 16.2, 0.05},
	}
	for _, c := range cases {
		e := BufferPacking(caps, c.x, c.y)
		got, err := Evaluate(e, rt, 2)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		almost(t, "Paragon packed "+c.x.String()+"Q"+c.y.String(), got, c.want, c.tol)
	}
}

func TestPaperParagonChainedEstimates(t *testing.T) {
	rt := PaperParagon()
	caps := CapsOf(machine.Paragon())
	cases := []struct {
		x, y pattern.Spec
		want float64
		tol  float64
	}{
		{pattern.Contig(), pattern.Contig(), 52, 0.05},
		{pattern.Contig(), pattern.Strided(64), 38, 0.05},
		{pattern.Strided(16), pattern.Strided(64), 38, 0.05},
		{pattern.Indexed(), pattern.Indexed(), 36, 0.05},
	}
	for _, c := range cases {
		e, err := Chained(caps, c.x, c.y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(e, rt, 2)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		almost(t, "Paragon chained "+c.x.String()+"Q'"+c.y.String(), got, c.want, c.tol)
	}
}

// Section 3.4.1: |1Q1024| estimated at 25.0 MB/s on the T3D.
func TestPaperSection341(t *testing.T) {
	rt := PaperT3D()
	caps := CapsOf(machine.T3D())
	e := BufferPacking(caps, pattern.Contig(), pattern.Strided(1024))
	got, err := Evaluate(e, rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "|1Q1024|", got, 25.0, 0.05)
}

// Chained beats buffer packing for every non-contiguous pattern in the
// paper's tables, on both machines — the headline claim.
func TestChainedBeatsPackingForNonContiguous(t *testing.T) {
	for _, m := range machine.Profiles() {
		rt := PaperTables()[m.Name]
		caps := CapsOf(m)
		for _, pat := range [][2]pattern.Spec{
			{pattern.Contig(), pattern.Strided(64)},
			{pattern.Strided(64), pattern.Contig()},
			{pattern.Indexed(), pattern.Indexed()},
		} {
			packedE := BufferPacking(caps, pat[0], pat[1])
			packed, err := Evaluate(packedE, rt, 2)
			if err != nil {
				t.Fatal(err)
			}
			chainedE, err := Chained(caps, pat[0], pat[1])
			if err != nil {
				t.Fatal(err)
			}
			chained, err := Evaluate(chainedE, rt, 2)
			if err != nil {
				t.Fatal(err)
			}
			if chained <= packed {
				t.Errorf("%s %sQ%s: chained %.1f <= packed %.1f", m.Name, pat[0], pat[1], chained, packed)
			}
		}
	}
}

func TestPVMStyleSlowerThanBufferPacking(t *testing.T) {
	rt := PaperT3D()
	caps := CapsOf(machine.T3D())
	for _, pat := range [][2]pattern.Spec{
		{pattern.Contig(), pattern.Contig()},
		{pattern.Indexed(), pattern.Indexed()},
	} {
		pvm, err := Evaluate(PVMStyle(caps, pat[0], pat[1]), rt, 2)
		if err != nil {
			t.Fatal(err)
		}
		packed, err := Evaluate(BufferPacking(caps, pat[0], pat[1]), rt, 2)
		if err != nil {
			t.Fatal(err)
		}
		if pvm >= packed {
			t.Errorf("%sQ%s: PVM %.1f >= packed %.1f", pat[0], pat[1], pvm, packed)
		}
	}
}

func TestChainedRequiresEngine(t *testing.T) {
	caps := Caps{} // no engines at all
	if _, err := Chained(caps, pattern.Contig(), pattern.Strided(64)); err == nil {
		t.Error("chained without engines should fail")
	}
	// Contiguous-only deposit cannot chain strided scatters without a
	// co-processor.
	caps = Caps{DepositContig: true}
	if _, err := Chained(caps, pattern.Contig(), pattern.Strided(64)); err == nil {
		t.Error("contiguous-only deposit cannot scatter strided")
	}
	if _, err := Chained(caps, pattern.Contig(), pattern.Contig()); err != nil {
		t.Errorf("contiguous chain should work: %v", err)
	}
}

func TestEstimateQ(t *testing.T) {
	m := machine.T3D()
	packed, chained, err := EstimateQ(m, PaperT3D(), pattern.Contig(), pattern.Strided(64))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "EstimateQ packed", packed, 25.2, 0.05)
	almost(t, "EstimateQ chained", chained, 38, 0.05)
}

// Property: parallel composition is commutative and Seq throughput never
// exceeds the slowest part.
func TestCompositionProperties(t *testing.T) {
	rt := NewRateTable("prop")
	rt.SetKey("1C1", 100)
	rt.SetKey("1S0", 60)
	rt.SetNet(netsim.DataOnly, 1, 150)

	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%200) + 1
		b := float64(bRaw%200) + 1
		rt.SetKey("1C1", a)
		rt.SetKey("1S0", b)
		par1, err1 := Evaluate(MustParse("1C1 || 1S0"), rt, 1)
		par2, err2 := Evaluate(MustParse("1S0 || 1C1"), rt, 1)
		seq, err3 := Evaluate(MustParse("1C1 o 1C1"), rt, 1) // uses a twice
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return par1 == par2 && par1 == math.Min(a, b) && seq <= a/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a sequential stage never increases throughput.
func TestSeqMonotoneProperty(t *testing.T) {
	rt := NewRateTable("prop")
	f := func(rates []uint8) bool {
		if len(rates) == 0 {
			return true
		}
		inv := 0.0
		for _, r := range rates {
			inv += 1 / (float64(r%100) + 1)
		}
		parts := make([]Expr, 0, len(rates))
		for i, r := range rates {
			key := Term{Op: OpCopy, Read: pattern.Contig(), Write: pattern.Contig()}
			_ = key
			_ = i
			rt.SetKey("1C1", float64(r%100)+1)
			parts = append(parts, Basic{C(pattern.Contig(), pattern.Contig())})
		}
		// All parts share the same (last-set) rate; check harmonic law.
		got, err := Evaluate(NewSeq(parts...), rt, 1)
		if err != nil {
			return false
		}
		last := float64(rates[len(rates)-1]%100) + 1
		want := last / float64(len(rates))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpsExprShapes(t *testing.T) {
	caps := CapsOf(machine.T3D())
	e := BufferPacking(caps, pattern.Indexed(), pattern.Indexed())
	if !strings.Contains(e.String(), "wC1") || !strings.Contains(e.String(), "1Cw") {
		t.Errorf("T3D packed shape wrong: %s", e)
	}
	ce, err := Chained(caps, pattern.Indexed(), pattern.Indexed())
	if err != nil {
		t.Fatal(err)
	}
	if ce.String() != "wS0 || Nadp || 0Dw" {
		t.Errorf("T3D chained shape = %s", ce)
	}
	// Contiguous chain uses data-only framing.
	ce, err = Chained(caps, pattern.Contig(), pattern.Contig())
	if err != nil {
		t.Fatal(err)
	}
	if ce.String() != "1S0 || Nd || 0D1" {
		t.Errorf("T3D contiguous chained shape = %s", ce)
	}
	// Paragon chained receives with the co-processor (R, not D).
	pcaps := CapsOf(machine.Paragon())
	ce, err = Chained(pcaps, pattern.Indexed(), pattern.Indexed())
	if err != nil {
		t.Fatal(err)
	}
	if ce.String() != "wS0 || Nadp || 0Rw" {
		t.Errorf("Paragon chained shape = %s", ce)
	}
}

func TestCapsOf(t *testing.T) {
	t3d := CapsOf(machine.T3D())
	if !t3d.DepositAny || t3d.FetchContig || t3d.RecvStore {
		t.Errorf("T3D caps wrong: %+v", t3d)
	}
	par := CapsOf(machine.Paragon())
	if par.DepositAny || !par.DepositContig || !par.FetchContig || !par.RecvStore || par.OverlapUnpack {
		t.Errorf("Paragon caps wrong: %+v", par)
	}
}

func TestBlockStridedRateLookup(t *testing.T) {
	rt := NewRateTable("blocks")
	rt.SetKey("1C1", 100)
	rt.SetKey("1C64", 50)
	rt.SetKey("1C64x2", 70)
	// Exact block-strided entry.
	r, err := rt.Rate(C(pattern.Contig(), pattern.StridedBlock(64, 2)))
	if err != nil || r != 70 {
		t.Fatalf("1C64x2 = %v, %v", r, err)
	}
	// Beyond the largest same-block stride: clamp to it.
	r, err = rt.Rate(C(pattern.Contig(), pattern.StridedBlock(1024, 2)))
	if err != nil || r != 70 {
		t.Errorf("1C1024x2 = %v, %v, want 70", r, err)
	}
	// Intermediate same-block strides interpolate between contiguous
	// (stride == block endpoint) and the stride-64 block entry.
	r, err = rt.Rate(C(pattern.Contig(), pattern.StridedBlock(16, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if r <= 70 || r >= 100 {
		t.Errorf("1C16x2 = %v, want between 70 and 100", r)
	}
}

func TestBlockStridedFallbackToPlainCurve(t *testing.T) {
	// Without block-strided measurements, a 2-word-block stride 64
	// behaves like the plain strided curve at stride 32.
	rt := PaperT3D()
	blocked, err := rt.Rate(C(pattern.Contig(), pattern.StridedBlock(64, 2)))
	if err != nil {
		t.Fatal(err)
	}
	plain32, err := rt.Rate(C(pattern.Contig(), pattern.Strided(32)))
	if err != nil {
		t.Fatal(err)
	}
	if blocked != plain32 {
		t.Errorf("fallback = %v, want plain stride-32 rate %v", blocked, plain32)
	}
}

func TestBottleneck(t *testing.T) {
	rt := PaperT3D()
	// Chained strided: Nadp@2 = 38 limits (vs 1S0=126, 0D64=52).
	e := MustParse("1S0 || Nadp || 0D64")
	leaf, rate, err := Bottleneck(e, rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.String() != "Nadp" {
		t.Errorf("bottleneck = %v, want Nadp", leaf)
	}
	if rate != 38 {
		t.Errorf("bottleneck rate = %v, want 38", rate)
	}
	// Packed indexed: the gather copy wC1 = 32.9 is the worst stage.
	e = MustParse("wC1 o (1S0 || Nd || 0D1) o 1Cw")
	leaf, rate, err = Bottleneck(e, rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.String() != "wC1" || rate != 32.9 {
		t.Errorf("bottleneck = %v @ %v, want wC1 @ 32.9", leaf, rate)
	}
}

func TestBottleneckErrors(t *testing.T) {
	rt := NewRateTable("empty")
	if _, _, err := Bottleneck(MustParse("1C1"), rt, 1); err == nil {
		t.Error("missing rate should fail")
	}
	if _, _, err := Bottleneck(Seq{}, rt, 1); err == nil {
		t.Error("empty seq should fail")
	}
	if _, _, err := Bottleneck(Par{}, rt, 1); err == nil {
		t.Error("empty par should fail")
	}
}
