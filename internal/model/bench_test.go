package model

import (
	"testing"

	"ctcomm/internal/pattern"
)

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("wC1 o (1S0 || Nadp || 0Dw) o wCw"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRateLookupInterpolated(b *testing.B) {
	rt := PaperT3D()
	term := C(pattern.Contig(), pattern.Strided(16))
	for i := 0; i < b.N; i++ {
		if _, err := rt.Rate(term); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateQ(b *testing.B) {
	rt := PaperT3D()
	caps := Caps{DepositAny: true}
	expr, err := Chained(caps, pattern.Indexed(), pattern.Indexed())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(expr, rt, 2); err != nil {
			b.Fatal(err)
		}
	}
}
