package model

import (
	"fmt"

	"ctcomm/internal/machine"
	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
)

// Caps summarizes the hardware capabilities that decide how the
// communication operation xQy can be composed on a machine (paper §5.1).
type Caps struct {
	// FetchContig/FetchAny: a background fetch engine exists for
	// contiguous reads (Paragon DMA) or for any pattern.
	FetchContig bool
	FetchAny    bool
	// DepositContig/DepositAny: a background deposit engine exists for
	// contiguous writes only (Paragon DMA) or for any pattern (T3D annex).
	DepositContig bool
	DepositAny    bool
	// RecvStore: a processor is available to perform receive-stores (on
	// the Paragon the co-processor acts as a software deposit engine).
	RecvStore bool
	// OverlapUnpack: the unpacking copy of buffer-packing transfers can
	// overlap the network stage (Paragon with a dedicated communication
	// co-processor, §5.1.3 second formula). CapsOf leaves this off —
	// the paper's published estimates use the sequential composition —
	// so it is an explicit opt-in for ablation studies.
	OverlapUnpack bool
}

// CapsOf derives the capability view from a machine profile.
func CapsOf(m *machine.Machine) Caps {
	return Caps{
		FetchContig:   m.Fetch.Present,
		FetchAny:      m.Fetch.Present && !m.Fetch.ContigOnly,
		DepositContig: m.Deposit.Present && m.Deposit.Contig,
		DepositAny:    m.Deposit.Present && m.Deposit.Strided && m.Deposit.Indexed,
		RecvStore:     m.CoProcessor,
		OverlapUnpack: false,
	}
}

// sendStage returns the best send transfer for a contiguous block:
// a fetch engine if present (it runs in the background), else the
// processor's load-send.
func (c Caps) sendStage() Expr {
	if c.FetchContig {
		return Basic{F(pattern.Contig())}
	}
	return Basic{S(pattern.Contig())}
}

// recvStage returns the best receive transfer for a contiguous block.
func (c Caps) recvStage() Expr {
	if c.DepositContig || c.DepositAny {
		return Basic{D(pattern.Contig())}
	}
	return Basic{R(pattern.Contig())}
}

// BufferPacking composes the buffer-packing (PVM-style) implementation
// of xQy (paper §3.4, §5.1.1, §5.1.3):
//
//	xQy = xC1 ∘ ( send ‖ Nd ‖ recv ) ∘ 1Cy
//
// The gather and scatter copies are always present — "message passing
// libraries like PVM force the programmer to copy the data elements in
// all cases to comply with the standard API" (§3.4). With OverlapUnpack
// the final copy runs in parallel with the network stage instead.
func BufferPacking(c Caps, x, y pattern.Spec) Expr {
	net := NewPar(c.sendStage(), Net{netsim.DataOnly}, c.recvStage())
	gather := Basic{C(x, pattern.Contig())}
	scatter := Basic{C(pattern.Contig(), y)}
	if c.OverlapUnpack {
		return NewSeq(gather, NewPar(net, scatter))
	}
	return NewSeq(gather, net, scatter)
}

// Chained composes the chained implementation xQ'y, which eliminates
// the local copies by reading the data in its home pattern, sending
// address-data pairs, and depositing directly at the destination
// (paper §5.1.2, §5.1.4):
//
//	1Q'1 = 1S0 ‖ Nd   ‖ recv(1)
//	xQ'y = xS0 ‖ Nadp ‖ deposit/recv(y)
//
// It returns an error when the machine has no engine able to scatter the
// destination pattern in the background.
func Chained(c Caps, x, y pattern.Spec) (Expr, error) {
	contig := x.Kind() == pattern.KindContig && y.Kind() == pattern.KindContig
	mode := netsim.AddrData
	if contig {
		mode = netsim.DataOnly
	}
	var recv Expr
	switch {
	case c.DepositAny:
		recv = Basic{D(y)}
	case c.DepositContig && y.Kind() == pattern.KindContig && contig:
		recv = Basic{D(y)}
	case c.RecvStore:
		recv = Basic{R(y)}
	default:
		return nil, fmt.Errorf("model: no engine can deposit pattern %s in the background", y)
	}
	return NewPar(Basic{S(x)}, Net{mode}, recv), nil
}

// PVMStyle composes the portable-library variant of buffer packing:
// like BufferPacking but with an additional copy through system buffers
// on each side ("the performance of PVM is affected by additional copies
// to temporary system buffers", §5.1.1). Per-message constant overhead
// is a latency effect outside this throughput model; the communication
// simulator accounts for it.
func PVMStyle(c Caps, x, y pattern.Spec) Expr {
	net := NewPar(c.sendStage(), Net{netsim.DataOnly}, c.recvStage())
	one := pattern.Contig()
	return NewSeq(
		Basic{C(x, one)}, Basic{C(one, one)},
		net,
		Basic{C(one, one)}, Basic{C(one, y)},
	)
}

// AAPCConstraint returns the memory-bandwidth constraint for patterns
// where every node sends and receives at the same time (§3.4.1):
// 2 × |xQy| must not exceed the node's memory bandwidth.
func AAPCConstraint(busMBps float64) Constraint {
	return Constraint{Name: "aapc-memory", Mult: 2, CapMBps: busMBps}
}

// Operation bundles an expression with the context needed to evaluate
// it: a name, the machine's rate table and congestion.
type Operation struct {
	Name string
	Expr Expr
}

// EstimateQ evaluates the buffer-packing and chained variants of xQy on
// a machine profile with the supplied rate table at the machine's
// default congestion, returning MB/s estimates. A variant the machine
// cannot implement reports an error.
func EstimateQ(m *machine.Machine, rt *RateTable, x, y pattern.Spec) (packed float64, chained float64, err error) {
	caps := CapsOf(m)
	packedExpr := BufferPacking(caps, x, y)
	packed, err = Evaluate(packedExpr, rt, m.DefaultCongestion)
	if err != nil {
		return 0, 0, err
	}
	chainedExpr, cerr := Chained(caps, x, y)
	if cerr != nil {
		return packed, 0, cerr
	}
	chained, err = Evaluate(chainedExpr, rt, m.DefaultCongestion)
	return packed, chained, err
}
