package model

import (
	"fmt"
	"math"
	"sort"

	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
)

// RateTable holds measured throughput figures for basic transfers (MB/s)
// plus network rates, and answers rate queries for arbitrary terms.
//
// Strided patterns are generalized the way the paper does in §4.2:
// "Since the numbers do not vary for large strides, we assume for
// simplicity that the throughput for stride 64 applies to any larger
// stride." Strides between measured points are interpolated linearly in
// log2(stride) on the reciprocal rate (time per word), which matches the
// shape of the measured Figure 4 curves.
type RateTable struct {
	Name string

	// rates maps a canonical term key ("64C1") to MB/s.
	rates map[string]float64

	// netPoints maps a mode to measured (congestion, MB/s) samples.
	netPoints map[netsim.Mode]map[float64]float64
}

// NewRateTable returns an empty table.
func NewRateTable(name string) *RateTable {
	return &RateTable{
		Name:      name,
		rates:     make(map[string]float64),
		netPoints: make(map[netsim.Mode]map[float64]float64),
	}
}

// Set records the rate for a term.
func (rt *RateTable) Set(t Term, mbps float64) {
	rt.rates[t.Key()] = mbps
}

// SetKey records a rate under a raw key such as "64C1". The key is
// parsed and canonicalized; invalid keys panic (tables are built from
// trusted literals or calibration output).
func (rt *RateTable) SetKey(key string, mbps float64) {
	t, err := ParseTerm(key)
	if err != nil {
		panic(err)
	}
	rt.Set(t, mbps)
}

// SetNet records the network rate of a mode at a congestion factor.
func (rt *RateTable) SetNet(m netsim.Mode, congestion, mbps float64) {
	pts := rt.netPoints[m]
	if pts == nil {
		pts = make(map[float64]float64)
		rt.netPoints[m] = pts
	}
	pts[congestion] = mbps
}

// Keys returns the term keys present, sorted.
func (rt *RateTable) Keys() []string {
	ks := make([]string, 0, len(rt.rates))
	for k := range rt.rates {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Rate returns the throughput for a term, generalizing over strides as
// described above. It fails if no applicable measurement exists.
func (rt *RateTable) Rate(t Term) (float64, error) {
	if r, ok := rt.rates[t.Key()]; ok {
		return r, nil
	}
	// Generalize a strided side against measured stride points.
	if t.Read.Kind() == pattern.KindStrided {
		if r, ok := rt.interpStride(t, true); ok {
			return r, nil
		}
	}
	if t.Write.Kind() == pattern.KindStrided {
		if r, ok := rt.interpStride(t, false); ok {
			return r, nil
		}
	}
	return 0, fmt.Errorf("model: %s: no rate for %s", rt.Name, t)
}

// interpStride generalizes the strided read (readSide) or write side of
// t using every measured entry that matches the term elsewhere. Only
// entries with the same dense-block length are comparable; contiguous
// entries count as the stride == block endpoint. When no same-block
// measurements exist, a block-strided pattern falls back to the plain
// strided curve at its per-word mean distance (stride/block).
func (rt *RateTable) interpStride(t Term, readSide bool) (float64, bool) {
	type pt struct {
		stride int
		rate   float64
	}
	var pts []pt
	side := t.Read
	if !readSide {
		side = t.Write
	}
	target := side.Stride()
	block := side.Block()
	sameBlock := 0
	for key, rate := range rt.rates {
		mt, err := ParseTerm(key)
		if err != nil || mt.Op != t.Op {
			continue
		}
		var mside pattern.Spec
		if readSide {
			if mt.Write != t.Write {
				continue
			}
			mside = mt.Read
		} else {
			if mt.Read != t.Read {
				continue
			}
			mside = mt.Write
		}
		switch mside.Kind() {
		case pattern.KindContig:
			// Contiguous is the stride == block endpoint of the curve.
			pts = append(pts, pt{block, rate})
		case pattern.KindStrided:
			if mside.Block() != block {
				continue
			}
			pts = append(pts, pt{mside.Stride(), rate})
			sameBlock++
		}
	}
	if block > 1 && sameBlock == 0 {
		// No block-strided measurements: approximate with the plain
		// strided curve at the per-word mean distance.
		eq := target / block
		if eq < 2 {
			eq = 2
		}
		fb := t
		if readSide {
			fb.Read = pattern.Strided(eq)
		} else {
			fb.Write = pattern.Strided(eq)
		}
		if r, err := rt.Rate(fb); err == nil {
			return r, true
		}
	}
	if len(pts) == 0 {
		return 0, false
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].stride < pts[j].stride })
	// Beyond the largest measured stride: the paper's rule, use it as is.
	if target >= pts[len(pts)-1].stride {
		return pts[len(pts)-1].rate, true
	}
	if target <= pts[0].stride {
		return pts[0].rate, true
	}
	// Interpolate time-per-word linearly in log2(stride) between the
	// bracketing measurements.
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		if target < lo.stride || target > hi.stride {
			continue
		}
		f := (math.Log2(float64(target)) - math.Log2(float64(lo.stride))) /
			(math.Log2(float64(hi.stride)) - math.Log2(float64(lo.stride)))
		invRate := (1-f)/lo.rate + f/hi.rate
		return 1 / invRate, true
	}
	return 0, false
}

// NetRate returns the network rate for a mode at a congestion factor.
// Exact measured points are returned directly; otherwise the nearest
// point is scaled by the bandwidth-division law rate ∝ 1/congestion
// (paper Table 4 is, to measurement noise, exactly that law).
func (rt *RateTable) NetRate(m netsim.Mode, congestion float64) (float64, error) {
	if congestion < 1 {
		congestion = 1
	}
	pts := rt.netPoints[m]
	if len(pts) == 0 {
		return 0, fmt.Errorf("model: %s: no network rates for %s", rt.Name, m)
	}
	if r, ok := pts[congestion]; ok {
		return r, nil
	}
	bestC, bestD := 0.0, math.Inf(1)
	for c := range pts {
		d := math.Abs(math.Log(c) - math.Log(congestion))
		if d < bestD {
			bestC, bestD = c, d
		}
	}
	return pts[bestC] * bestC / congestion, nil
}

// ParseTerm parses a canonical term key such as "64C1", "wS0" or "0Dw".
func ParseTerm(key string) (Term, error) {
	opIdx := -1
	for i := 0; i < len(key); i++ {
		if Op(key[i]).Valid() {
			// The op letter must not be the first or last character and
			// must split the key into two parseable patterns; "w" and
			// digits are never valid ops so this is unambiguous except
			// for 'C','S','F','R','D' themselves, which cannot appear in
			// pattern spellings.
			opIdx = i
			break
		}
	}
	if opIdx <= 0 || opIdx == len(key)-1 {
		return Term{}, fmt.Errorf("model: invalid term key %q", key)
	}
	read, err := pattern.ParseSpec(key[:opIdx])
	if err != nil {
		return Term{}, fmt.Errorf("model: invalid read pattern in %q: %v", key, err)
	}
	write, err := pattern.ParseSpec(key[opIdx+1:])
	if err != nil {
		return Term{}, fmt.Errorf("model: invalid write pattern in %q: %v", key, err)
	}
	return NewTerm(Op(key[opIdx]), read, write)
}
