// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark reports the simulated throughput of the
// reproduced artifact as the custom metric "simMB/s" — the number to
// compare against the paper — while the standard time/op measures the
// cost of the simulation itself.
package ctcomm_test

import (
	"testing"

	"ctcomm/internal/aapc"
	"ctcomm/internal/apps/fem"
	"ctcomm/internal/apps/fft"
	"ctcomm/internal/apps/sor"
	"ctcomm/internal/calibrate"
	"ctcomm/internal/comm"
	"ctcomm/internal/distrib"
	"ctcomm/internal/machine"
	"ctcomm/internal/memsim"
	"ctcomm/internal/model"
	"ctcomm/internal/netsim"
	"ctcomm/internal/pattern"
	"ctcomm/internal/xfer"
)

const benchWords = 1 << 14

// reportRate attaches the simulated throughput metric.
func reportRate(b *testing.B, mbps float64) {
	b.Helper()
	b.ReportMetric(mbps, "simMB/s")
}

// --- Figure 1: PVM vs fastest library over block size -----------------

func BenchmarkFig1(b *testing.B) {
	for _, m := range machine.Profiles() {
		for _, style := range []comm.Style{comm.PVM, comm.Direct} {
			b.Run(m.Name+"/"+style.String(), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := comm.Run(m, style, pattern.Contig(), pattern.Contig(),
						comm.Options{Words: benchWords})
					if err != nil {
						b.Fatal(err)
					}
					last = res.MBps()
				}
				b.SetBytes(benchWords * 8)
				reportRate(b, last)
			})
		}
	}
}

// --- Table 1 / Figure 4: local copies ---------------------------------

func BenchmarkTable1LocalCopies(b *testing.B) {
	cases := []struct {
		name string
		r, w pattern.Spec
	}{
		{"1C1", pattern.Contig(), pattern.Contig()},
		{"1C64", pattern.Contig(), pattern.Strided(64)},
		{"64C1", pattern.Strided(64), pattern.Contig()},
		{"1Cw", pattern.Contig(), pattern.Indexed()},
		{"wC1", pattern.Indexed(), pattern.Contig()},
	}
	for _, m := range machine.Profiles() {
		for _, c := range cases {
			b.Run(m.Name+"/"+c.name, func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := xfer.Copy(m.NewNode(0), c.r, c.w, benchWords)
					if err != nil {
						b.Fatal(err)
					}
					last = res.MBps()
				}
				b.SetBytes(benchWords * 8)
				reportRate(b, last)
			})
		}
	}
}

func BenchmarkFig4StrideSweep(b *testing.B) {
	for _, m := range machine.Profiles() {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				calibrate.StrideSweep(m, []int{2, 8, 32, 64}, benchWords)
			}
		})
	}
}

// --- Tables 2 and 3: send and receive transfers ------------------------

func BenchmarkTable2Send(b *testing.B) {
	for _, m := range machine.Profiles() {
		for _, spec := range []pattern.Spec{pattern.Contig(), pattern.Strided(64), pattern.Indexed()} {
			b.Run(m.Name+"/"+spec.String()+"S0", func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := xfer.LoadSend(m.NewNode(0), spec, benchWords)
					if err != nil {
						b.Fatal(err)
					}
					last = res.MBps()
				}
				b.SetBytes(benchWords * 8)
				reportRate(b, last)
			})
		}
	}
	// The Paragon's DMA fetch path (1F0).
	b.Run("Intel Paragon/1F0", func(b *testing.B) {
		m := machine.Paragon()
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := xfer.FetchSend(m.NewNode(0), pattern.Contig(), benchWords)
			if err != nil {
				b.Fatal(err)
			}
			last = res.MBps()
		}
		b.SetBytes(benchWords * 8)
		reportRate(b, last)
	})
}

func BenchmarkTable3Receive(b *testing.B) {
	type rc struct {
		name    string
		deposit bool
		w       pattern.Spec
	}
	cases := map[string][]rc{
		"Cray T3D": {
			{"0D1", true, pattern.Contig()},
			{"0D64", true, pattern.Strided(64)},
			{"0Dw", true, pattern.Indexed()},
		},
		"Intel Paragon": {
			{"0R1", false, pattern.Contig()},
			{"0R64", false, pattern.Strided(64)},
			{"0Rw", false, pattern.Indexed()},
			{"0D1", true, pattern.Contig()},
		},
	}
	for _, m := range machine.Profiles() {
		for _, c := range cases[m.Name] {
			b.Run(m.Name+"/"+c.name, func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					var res xfer.Result
					var err error
					if c.deposit {
						res, err = xfer.RecvDeposit(m.NewNode(0), c.w, benchWords)
					} else {
						res, err = xfer.RecvStore(m.NewNode(0), c.w, benchWords)
					}
					if err != nil {
						b.Fatal(err)
					}
					last = res.MBps()
				}
				b.SetBytes(benchWords * 8)
				reportRate(b, last)
			})
		}
	}
}

// --- Table 4: network rates vs congestion ------------------------------

func BenchmarkTable4Network(b *testing.B) {
	t3d := machine.T3D()
	for _, mode := range []netsim.Mode{netsim.DataOnly, netsim.AddrData} {
		for _, cong := range []float64{1, 2, 4} {
			b.Run(mode.String()+"/congestion"+table4Name(cong), func(b *testing.B) {
				net := netsim.MustNewNetwork(t3d.Topo, t3d.Net)
				payload := int64(benchWords * 8)
				var rate float64
				for i := 0; i < b.N; i++ {
					net.Reset()
					done := net.Send(0, 0, 1, payload, mode)
					rate = float64(payload) * 1e3 / float64(done) / cong
				}
				b.SetBytes(payload)
				reportRate(b, rate)
			})
		}
	}
}

func table4Name(c float64) string {
	switch c {
	case 1:
		return "1"
	case 2:
		return "2"
	default:
		return "4"
	}
}

// --- Sections 5.1.x and Figures 7/8: packed vs chained -----------------

func BenchmarkFig7T3D(b *testing.B) { benchPackedVsChained(b, machine.T3D(), true) }

func BenchmarkFig8Paragon(b *testing.B) { benchPackedVsChained(b, machine.Paragon(), false) }

func benchPackedVsChained(b *testing.B, m *machine.Machine, duplex bool) {
	cases := []struct {
		name string
		x, y pattern.Spec
	}{
		{"1Q1", pattern.Contig(), pattern.Contig()},
		{"1Q64", pattern.Contig(), pattern.Strided(64)},
		{"64Q1", pattern.Strided(64), pattern.Contig()},
		{"wQw", pattern.Indexed(), pattern.Indexed()},
	}
	for _, c := range cases {
		for _, style := range []comm.Style{comm.BufferPacking, comm.Chained} {
			b.Run(c.name+"/"+style.String(), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := comm.Run(m, style, c.x, c.y,
						comm.Options{Words: benchWords, Duplex: duplex})
					if err != nil {
						b.Fatal(err)
					}
					last = res.MBps()
				}
				b.SetBytes(benchWords * 8)
				reportRate(b, last)
			})
		}
	}
}

// --- Table 5: strided loads vs strided stores --------------------------

func BenchmarkTable5Orientation(b *testing.B) {
	for _, m := range machine.Profiles() {
		for _, c := range []struct {
			name string
			x, y pattern.Spec
		}{
			{"1Q16", pattern.Contig(), pattern.Strided(16)},
			{"16Q1", pattern.Strided(16), pattern.Contig()},
		} {
			b.Run(m.Name+"/"+c.name, func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := comm.Run(m, comm.Chained, c.x, c.y,
						comm.Options{Words: benchWords, Duplex: !m.CoProcessor})
					if err != nil {
						b.Fatal(err)
					}
					last = res.MBps()
				}
				b.SetBytes(benchWords * 8)
				reportRate(b, last)
			})
		}
	}
}

// --- Table 6 and §6.2: application kernels ------------------------------

func BenchmarkTable6Transpose(b *testing.B) {
	m := machine.T3D()
	const n = 256
	a := make([][]complex128, n)
	for i := range a {
		a[i] = make([]complex128, n)
	}
	for _, style := range []comm.Style{comm.BufferPacking, comm.Chained, comm.PVM} {
		b.Run(style.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				_, rep, err := fft.DistributedTranspose(
					fft.DistConfig{M: m, Style: style, Nodes: 64}, a)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.MBps()
			}
			reportRate(b, last)
		})
	}
}

func BenchmarkTable6FEM(b *testing.B) {
	for _, style := range []comm.Style{comm.BufferPacking, comm.Chained} {
		b.Run(style.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, _, err := fem.SolveValley(fem.Config{
					M: machine.T3D(), Style: style, Parts: 16, Seed: 7,
				}, 16, 16, 6)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Comm.MBps()
			}
			reportRate(b, last)
		})
	}
}

func BenchmarkTable6SOR(b *testing.B) {
	for _, style := range []comm.Style{comm.BufferPacking, comm.Chained} {
		b.Run(style.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := sor.Solve(sor.Config{
					M: machine.T3D(), Style: style, Nodes: 64, MaxIter: 10, Tol: 1e-12,
				}, sor.HotPlate(256))
				if err != nil {
					b.Fatal(err)
				}
				last = res.Comm.MBps()
			}
			reportRate(b, last)
		})
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// BenchmarkAblationRDAL quantifies the read-ahead unit's contribution to
// contiguous load streams (paper §3.5.1 reports ~60%).
func BenchmarkAblationRDAL(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := machine.T3D().Mem
			cfg.ReadAhead = on
			acc := pattern.NewStream(pattern.Contig(), 0, benchWords).Accesses(false)
			var last float64
			for i := 0; i < b.N; i++ {
				mem := memsim.MustNew(cfg)
				last = mem.Run(acc).MBps()
			}
			b.SetBytes(benchWords * 8)
			reportRate(b, last)
		})
	}
}

// BenchmarkAblationWBQ quantifies the write queue's effect on strided
// stores (the mechanism behind the T3D's 1C64 > 64C1 asymmetry).
func BenchmarkAblationWBQ(b *testing.B) {
	for _, entries := range []int{0, 1, 4, 8} {
		b.Run(wbqName(entries), func(b *testing.B) {
			cfg := machine.T3D().Mem
			cfg.WBQEntries = entries
			acc := pattern.NewStream(pattern.Strided(64), 0, benchWords).Accesses(true)
			var last float64
			for i := 0; i < b.N; i++ {
				mem := memsim.MustNew(cfg)
				last = mem.Run(acc).MBps()
			}
			b.SetBytes(benchWords * 8)
			reportRate(b, last)
		})
	}
}

func wbqName(n int) string {
	return "entries" + string(rune('0'+n))
}

// BenchmarkAblationPFQ quantifies pipelined loads on strided load
// streams (the mechanism behind the Paragon's 64C1 > 1C64 asymmetry).
func BenchmarkAblationPFQ(b *testing.B) {
	for _, depth := range []int{0, 1, 3, 8} {
		b.Run("depth"+string(rune('0'+depth)), func(b *testing.B) {
			cfg := machine.Paragon().Mem
			cfg.PFQDepth = depth
			acc := pattern.NewStream(pattern.Strided(64), 0, benchWords).Accesses(false)
			var last float64
			for i := 0; i < b.N; i++ {
				mem := memsim.MustNew(cfg)
				last = mem.Run(acc).MBps()
			}
			b.SetBytes(benchWords * 8)
			reportRate(b, last)
		})
	}
}

// BenchmarkAblationDeposit contrasts a fully flexible deposit engine
// (T3D annex) against a contiguous-only DMA for the chained strided
// operation — the hardware-design argument of the paper's conclusions.
func BenchmarkAblationDeposit(b *testing.B) {
	flexible := machine.T3D()
	restricted := machine.T3D()
	restricted.Deposit.Strided = false
	restricted.Deposit.Indexed = false
	restricted.CoProcessor = false
	b.Run("flexible", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := comm.Run(flexible, comm.Chained, pattern.Contig(), pattern.Strided(64),
				comm.Options{Words: benchWords})
			if err != nil {
				b.Fatal(err)
			}
			last = res.MBps()
		}
		reportRate(b, last)
	})
	b.Run("contig-only-fallback", func(b *testing.B) {
		// Without a flexible engine the operation falls back to buffer
		// packing (chaining is impossible).
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := comm.Run(restricted, comm.BufferPacking, pattern.Contig(), pattern.Strided(64),
				comm.Options{Words: benchWords})
			if err != nil {
				b.Fatal(err)
			}
			last = res.MBps()
		}
		reportRate(b, last)
	})
}

// BenchmarkAblationADP quantifies the cost of the address-data-pair
// framing that all 1995 systems used ("compressed" addressing would
// halve the overhead; the paper notes no system implements it).
func BenchmarkAblationADP(b *testing.B) {
	base := machine.T3D()
	compressed := machine.T3D()
	compressed.Net.AddrBytes = 4 // block-compressed addresses
	for _, tc := range []struct {
		name string
		m    *machine.Machine
	}{{"full-pairs", base}, {"compressed", compressed}} {
		b.Run(tc.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := comm.Run(tc.m, comm.Chained, pattern.Contig(), pattern.Strided(64),
					comm.Options{Words: benchWords})
				if err != nil {
					b.Fatal(err)
				}
				last = res.MBps()
			}
			reportRate(b, last)
		})
	}
}

// BenchmarkModelEvaluate measures the model evaluation itself: parsing
// and evaluating the canonical buffer-packing expression.
func BenchmarkModelEvaluate(b *testing.B) {
	rt := model.PaperT3D()
	e := model.MustParse("wC1 o (1S0 || Nd || 0D1) o 1Cw")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(e, rt, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibration measures a full basic-transfer calibration pass.
func BenchmarkCalibration(b *testing.B) {
	m := machine.T3D()
	for i := 0; i < b.N; i++ {
		calibrate.Measure(m, benchWords)
	}
}

// --- Extension benchmarks: put/get, AAPC scheduling, redistributions ---

// BenchmarkExtPutGet reproduces the §3.5 footnote-2 asymmetry.
func BenchmarkExtPutGet(b *testing.B) {
	m := machine.T3D()
	b.Run("put", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := comm.Run(m, comm.Chained, pattern.Strided(64), pattern.Contig(),
				comm.Options{Words: benchWords})
			if err != nil {
				b.Fatal(err)
			}
			last = res.MBps()
		}
		reportRate(b, last)
	})
	b.Run("get", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := comm.RunGet(m, comm.Chained, pattern.Strided(64), pattern.Contig(),
				comm.GetOptions{Options: comm.Options{Words: benchWords}})
			if err != nil {
				b.Fatal(err)
			}
			last = res.MBps()
		}
		reportRate(b, last)
	})
}

// BenchmarkExtAAPCSchedule measures schedule generation plus congestion
// analysis for the machine-sized complete exchange.
func BenchmarkExtAAPCSchedule(b *testing.B) {
	m := machine.T3D()
	var last float64
	for i := 0; i < b.N; i++ {
		s, err := aapc.XOR(m.Nodes())
		if err != nil {
			b.Fatal(err)
		}
		last = s.MaxCongestion(m.Topo, m.Net.NodesPerPort)
	}
	b.ReportMetric(last, "congestion")
}

// BenchmarkExtRedistribution prices a BLOCK->CYCLIC redistribution plan.
func BenchmarkExtRedistribution(b *testing.B) {
	m := machine.T3D()
	src, err := distrib.NewBlock(benchWords, 16)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := distrib.NewCyclic(benchWords, 16)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := distrib.Plan(src, dst)
	if err != nil {
		b.Fatal(err)
	}
	for _, style := range []comm.Style{comm.BufferPacking, comm.Chained} {
		b.Run(style.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				rep, err := distrib.Execute(m, plan, distrib.ExecuteOptions{Style: style})
				if err != nil {
					b.Fatal(err)
				}
				last = rep.MBps()
			}
			reportRate(b, last)
		})
	}
}

// BenchmarkAblationWritePolicy contrasts the T3D's write-around + write
// queue against a hypothetical write-back cache for communication-style
// strided store streams. The paper's premise (§3.1) is that temporal
// locality plays only a small role in communication accesses, so the
// write-back cache's reuse advantage cannot materialize — it only adds
// allocate traffic.
func BenchmarkAblationWritePolicy(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy memsim.WritePolicy
	}{
		{"write-around", memsim.WriteAround},
		{"write-back", memsim.WriteBack},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := machine.T3D().Mem
			cfg.Policy = tc.policy
			acc := pattern.NewStream(pattern.Strided(64), 0, benchWords).Accesses(true)
			var last float64
			for i := 0; i < b.N; i++ {
				mem := memsim.MustNew(cfg)
				last = mem.Run(acc).MBps()
			}
			b.SetBytes(benchWords * 8)
			reportRate(b, last)
		})
	}
}

// BenchmarkAblationWarmCache contrasts the cold-cache transfers the
// model is parameterized with against a warm-cache rerun of the same
// small copy. Communication buffers in real applications exceed the
// cache (paper §3.1: "a compiler cannot assume that the local data
// structure on any node fits entirely into the local cache"), which is
// why the cold rates are the right model inputs — warm reruns are much
// faster and would mislead the model.
func BenchmarkAblationWarmCache(b *testing.B) {
	cfg := machine.T3D().Mem
	words := cfg.CacheBytes / 16 // footprint fits the cache
	acc := pattern.NewStream(pattern.Contig(), 0, words).Accesses(false)
	b.Run("cold", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			mem := memsim.MustNew(cfg)
			last = mem.Run(acc).MBps()
		}
		reportRate(b, last)
	})
	b.Run("warm", func(b *testing.B) {
		mem := memsim.MustNew(cfg)
		mem.Run(acc) // prime
		var last float64
		for i := 0; i < b.N; i++ {
			last = mem.Run(acc).MBps()
		}
		reportRate(b, last)
	})
}
